package dueling

import (
	"reflect"
	"testing"
)

// N-way tournament counterpart of merge_test.go: opaque candidates
// (several sharing one CPth, distinguished only by index/payload) are
// voted on across shard controllers, merged at the barrier, and must
// select exactly the winner a sequential controller picks from the
// combined stream — under max-hits, its tie-break, and the Th/Tw rule.

func policyCands() []Candidate {
	return []Candidate{
		{Name: "CA_RWR", CPth: 58, Payload: 0},
		{Name: "SRRIP", CPth: 58, Payload: 1},
		{Name: "BRRIP", CPth: 58, Payload: 2},
		{Name: "PAR", CPth: 58, Payload: 3},
	}
}

func TestTournamentMergeMatchesSequential(t *testing.T) {
	cases := []struct {
		name    string
		th, tw  float64
		hits    []uint64
		bytes   []uint64
		wantIdx int // expected winning candidate index after EndEpoch
	}{
		{
			name: "plain max hits",
			hits: []uint64{5, 17, 9, 3}, bytes: []uint64{100, 100, 100, 100},
			wantIdx: 1,
		},
		{
			name: "tie breaks to lowest index",
			hits: []uint64{7, 12, 12, 4}, bytes: []uint64{0, 0, 0, 0},
			wantIdx: 1,
		},
		{
			name: "all zero votes keep candidate 0",
			hits: []uint64{0, 0, 0, 0}, bytes: []uint64{0, 0, 0, 0},
			wantIdx: 0,
		},
		{
			name: "Th rule trades hits for byte reduction",
			th:   10, tw: 20,
			// Best hits: index 2. Index 0 keeps >90% of its hits and cuts
			// bytes by >20% -> lowest qualifying index wins.
			hits: []uint64{95, 80, 100, 60}, bytes: []uint64{500, 900, 1000, 400},
			wantIdx: 0,
		},
		{
			name: "Th rule falls back to plain winner",
			th:   4, tw: 5,
			hits: []uint64{50, 60, 100, 70}, bytes: []uint64{990, 980, 1000, 995},
			wantIdx: 2,
		},
	}
	for _, tc := range cases {
		for _, shards := range []int{1, 2, 3, 8} {
			seq := NewTournament(96, policyCands(), 0, tc.th, tc.tw)
			seq.AddVotes(tc.hits, tc.bytes)
			seq.EndEpoch()

			global := NewTournament(96, policyCands(), 0, tc.th, tc.tw)
			locals := make([]*Controller, shards)
			hParts := splitVotes(tc.hits, shards)
			bParts := splitVotes(tc.bytes, shards)
			for i := range locals {
				locals[i] = NewTournament(96, policyCands(), 0, tc.th, tc.tw)
				locals[i].AddVotes(hParts[i], bParts[i])
			}
			for _, l := range locals {
				global.MergeFrom(l)
			}
			global.EndEpoch()
			for _, l := range locals {
				l.AdoptWinner(global)
			}

			if got := global.WinnerIndex(); got != tc.wantIdx {
				t.Errorf("%s/%d shards: merged winner index %d, want %d", tc.name, shards, got, tc.wantIdx)
			}
			if got, want := global.WinnerIndex(), seq.WinnerIndex(); got != want {
				t.Errorf("%s/%d shards: merged winner %d != sequential %d", tc.name, shards, got, want)
			}
			if !reflect.DeepEqual(global.IdxHistory, seq.IdxHistory) {
				t.Errorf("%s/%d shards: idx history %v != sequential %v", tc.name, shards, global.IdxHistory, seq.IdxHistory)
			}
			for i, l := range locals {
				// Follower sets everywhere must resolve to the global
				// winner; set 95 is a follower (95 % 32 = 31 > #cands).
				if got, want := l.CandidateFor(95), seq.CandidateFor(95); got != want {
					t.Errorf("%s/%d shards: shard %d follower candidate %d, want %d", tc.name, shards, i, got, want)
				}
				if h, b := l.OpenVoteTotals(); h != 0 || b != 0 {
					t.Errorf("%s/%d shards: shard %d retains open votes (%d hits, %d bytes)", tc.name, shards, i, h, b)
				}
			}
		}
	}
}

func TestTournamentSamplerAssignment(t *testing.T) {
	c := NewTournament(96, policyCands(), 0, 0, 0)
	if c.Divisor() != GroupDivisor {
		t.Fatalf("divisor %d, want default %d", c.Divisor(), GroupDivisor)
	}
	for set := 0; set < 96; set++ {
		g := set % GroupDivisor
		idx, sampler := c.IsSampler(set)
		if g < 4 {
			if !sampler || idx != g {
				t.Fatalf("set %d: sampler (%d,%v), want (%d,true)", set, idx, sampler, g)
			}
			if c.CandidateFor(set) != g {
				t.Fatalf("set %d resolves to %d, want pinned candidate %d", set, c.CandidateFor(set), g)
			}
		} else if sampler {
			t.Fatalf("set %d should be a follower", set)
		}
	}
	// Followers track the initial winner (last candidate) and the adopted
	// one after an epoch.
	if c.CandidateFor(95) != 3 {
		t.Fatalf("initial follower candidate %d, want 3 (permissive start)", c.CandidateFor(95))
	}
	c.AddVotes([]uint64{9, 1, 1, 1}, []uint64{0, 0, 0, 0})
	c.EndEpoch()
	if c.CandidateFor(95) != 0 {
		t.Fatalf("follower candidate %d after epoch, want 0", c.CandidateFor(95))
	}
	if c.WinnerCandidate().Name != "CA_RWR" {
		t.Fatalf("winner descriptor %+v", c.WinnerCandidate())
	}
}

func TestTournamentCustomDivisor(t *testing.T) {
	// Divisor 8: each candidate samples on 1/8 of the sets.
	c := NewTournament(64, policyCands(), 8, 0, 0)
	if c.Divisor() != 8 {
		t.Fatalf("divisor %d", c.Divisor())
	}
	for k := 0; k < 4; k++ {
		if n := c.SamplerSets(k); n != 8 {
			t.Fatalf("candidate %d samples %d sets, want 8", k, n)
		}
	}
}

func TestTournamentDuplicateCPthAllowed(t *testing.T) {
	// Policy tournaments legitimately share one CPth across candidates —
	// only the legacy ascending-CPth constructor forbids duplicates.
	c := NewTournament(64, []Candidate{{Name: "A", CPth: 58}, {Name: "B", CPth: 58}}, 0, 0, 0)
	if c.CPthFor(0) != 58 || c.CPthFor(1) != 58 {
		t.Fatal("shared CPth not honoured")
	}
}

func TestTournamentPanicsOnBadArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("accepted more candidates than divisor classes")
		}
	}()
	NewTournament(64, policyCands(), 2, 0, 0)
}

func TestLegacyConstructorsAreTournaments(t *testing.T) {
	// New == NewWithCandidates(DefaultCandidates) == the 10-way tournament.
	c := New(128, 0, 0)
	list := c.CandidateList()
	if len(list) != len(DefaultCandidates) {
		t.Fatalf("%d candidates, want %d", len(list), len(DefaultCandidates))
	}
	for i, cd := range list {
		if cd.CPth != DefaultCandidates[i] || cd.Payload != i {
			t.Fatalf("candidate %d = %+v", i, cd)
		}
	}
	if got := c.Winner(); got != 64 {
		t.Fatalf("initial winner %d, want permissive 64", got)
	}
}
