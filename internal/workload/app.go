package workload

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Access is one memory reference emitted by an application model.
type Access struct {
	Block uint64 // global block address (64-byte granularity)
	Write bool
	Gap   int // non-memory instructions executed before this access
}

// App is a running instance of a synthetic application bound to one core.
// Block addresses are globally unique: the app owns the address range
// [base, base+footprint).
type App struct {
	prof     Profile
	base     uint64
	seed     uint64
	rng      *stats.RNG
	loopPos  int
	strmPos  int
	accesses uint64
	mixes    []PatternMix // phase 0 = base profile, then prof.Phases
	versions []uint32
}

// NewApp instantiates profile p on an address-space base (block units),
// seeded deterministically.
func NewApp(p Profile, base uint64, seed uint64) (*App, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	mixes := append([]PatternMix{p.BaseMix()}, p.Phases...)
	return &App{
		prof:     p,
		base:     base,
		seed:     seed,
		rng:      stats.NewRNG(seed ^ hash64(base)),
		mixes:    mixes,
		versions: make([]uint32, p.FootprintBlocks),
	}, nil
}

// CurrentPhase returns the index of the pattern mixture in effect.
func (a *App) CurrentPhase() int {
	if len(a.mixes) == 1 {
		return 0
	}
	return int(a.accesses/uint64(a.prof.PhaseLen)) % len(a.mixes)
}

// Profile returns the app's profile.
func (a *App) Profile() Profile { return a.prof }

// Base returns the app's address-space base in block units.
func (a *App) Base() uint64 { return a.base }

// Owns reports whether a global block address belongs to this app.
func (a *App) Owns(block uint64) bool {
	return block >= a.base && block < a.base+uint64(a.prof.FootprintBlocks)
}

// Next produces the app's next memory access.
func (a *App) Next() Access {
	p := &a.prof
	m := &a.mixes[a.CurrentPhase()]
	a.accesses++
	u := a.rng.Float64()
	var local int
	var write bool
	switch {
	case u < m.LoopFrac:
		local = a.loopPos
		a.loopPos++
		if a.loopPos >= p.LoopBlocks {
			a.loopPos = 0
		}
		// Loop blocks are read-only: they become LLC loop/read-reuse blocks.
	case u < m.LoopFrac+m.StreamFrac:
		local = p.LoopBlocks + a.strmPos
		streamLen := p.FootprintBlocks - p.LoopBlocks
		a.strmPos++
		if a.strmPos >= streamLen {
			a.strmPos = 0
		}
		write = a.rng.Float64() < m.StreamWriteFrac
	case u < m.LoopFrac+m.StreamFrac+m.HotFrac:
		local = p.LoopBlocks + a.rng.Intn(p.HotBlocks)
		write = a.rng.Float64() < m.HotWriteFrac
	case u < m.LoopFrac+m.StreamFrac+m.HotFrac+m.SkewFrac:
		// Zipf-like set pressure. The footprint is viewed as SkewChunks
		// interleaved chunks (chunk = block index mod SkewChunks), so one
		// chunk's blocks all land on the same small group of LLC sets for
		// any power-of-two set count ≤ footprint. The chunk index is drawn
		// as floor(U^theta · SkewChunks): P(chunk < c) = (c/SkewChunks)^
		// (1/theta), so a handful of chunks absorb most of the traffic,
		// and within a chunk blocks are drawn uniformly — many more
		// blocks than the set has ways, so the hot sets churn instead of
		// caching. That is exactly the page-coloring-conflict shape that
		// produces inter-set wear variation. Unreachable when SkewFrac is
		// 0, so legacy profiles draw the exact same RNG sequence as
		// before this case existed.
		band := p.SkewBand
		if band < 1 {
			band = SkewChunks
		}
		chunk := int(math.Pow(a.rng.Float64(), p.SkewTheta) * float64(band))
		if chunk >= band {
			chunk = band - 1
		}
		chunk = (chunk + p.SkewOffset) % SkewChunks
		chunkLen := p.FootprintBlocks / SkewChunks
		if chunkLen < 1 {
			chunkLen = 1
		}
		local = a.rng.Intn(chunkLen)*SkewChunks + chunk
		if local >= p.FootprintBlocks {
			local = p.FootprintBlocks - 1
		}
		write = a.rng.Float64() < m.SkewWriteFrac
	default:
		local = a.rng.Intn(p.FootprintBlocks)
		write = a.rng.Float64() < m.RandWriteFrac
	}
	gap := 1 + a.rng.Intn(2*p.GapMean)
	return Access{Block: a.base + uint64(local), Write: write, Gap: gap}
}

// BumpVersion records a store to a block: subsequent Content calls return
// the new (same-class) value.
func (a *App) BumpVersion(block uint64) {
	if !a.Owns(block) {
		panic(fmt.Sprintf("workload: block %#x not owned by %s", block, a.prof.Name))
	}
	a.versions[block-a.base]++
}

// ClassOf returns the compression class assigned to a block.
func (a *App) ClassOf(block uint64) Class {
	if !a.Owns(block) {
		panic(fmt.Sprintf("workload: block %#x not owned by %s", block, a.prof.Name))
	}
	return classOf(&a.prof, a.seed, block-a.base)
}

// Content returns the current 64-byte contents of a block.
func (a *App) Content(block uint64) []byte {
	return a.ContentInto(nil, block)
}

// ContentInto writes the block's current 64-byte contents into dst (grown
// only when its capacity is below 64), performing zero allocations when
// dst is adequate. The returned slice aliases dst's storage.
func (a *App) ContentInto(dst []byte, block uint64) []byte {
	if !a.Owns(block) {
		panic(fmt.Sprintf("workload: block %#x not owned by %s", block, a.prof.Name))
	}
	local := block - a.base
	return GenContentInto(dst, classOf(&a.prof, a.seed, local), a.seed, local, a.versions[local])
}

// Version returns the block's current content version (the number of
// stores recorded by BumpVersion). The shard engine samples it on the
// front-end thread and ships it with the insert event, so shard workers
// can regenerate the exact content later via ContentForVersion.
func (a *App) Version(block uint64) uint32 {
	if !a.Owns(block) {
		panic(fmt.Sprintf("workload: block %#x not owned by %s", block, a.prof.Name))
	}
	return a.versions[block-a.base]
}

// ContentForVersion writes the block's contents at an explicit version
// into dst, like ContentInto but independent of the app's mutable version
// table. It reads only the app's immutable profile and seed, so it is safe
// to call concurrently with the front-end thread that advances versions.
func (a *App) ContentForVersion(dst []byte, block uint64, version uint32) []byte {
	if !a.Owns(block) {
		panic(fmt.Sprintf("workload: block %#x not owned by %s", block, a.prof.Name))
	}
	local := block - a.base
	return GenContentInto(dst, classOf(&a.prof, a.seed, local), a.seed, local, version)
}

// SkewChunks is the interleave factor of the zipfian set-pressure
// pattern: blocks are grouped by index mod SkewChunks, and the zipf head
// concentrates on the lowest chunk numbers. A power of two, so each
// chunk aliases onto sets/SkewChunks (or 1) LLC set(s) for every
// power-of-two set count the configs use.
const SkewChunks = 64

// AppSpacing is the address-space stride between apps in block units;
// large enough that footprints never overlap.
const AppSpacing = uint64(1) << 32

// NewMix instantiates the apps of one of the paper's Table V mixes
// (0-based index), each on its own address-space slice. scale rescales
// footprints (1.0 = the default scaled configuration).
func NewMix(mix int, seed uint64, scale float64) ([]*App, error) {
	profs, err := MixProfiles(mix)
	if err != nil {
		return nil, err
	}
	apps := make([]*App, len(profs))
	for i, p := range profs {
		if scale != 1.0 {
			p = p.Scale(scale)
		}
		apps[i], err = NewApp(p, uint64(i+1)*AppSpacing, seed+uint64(i)*7919)
		if err != nil {
			return nil, err
		}
	}
	return apps, nil
}
