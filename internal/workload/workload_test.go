package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/bdi"
)

func TestAllProfilesValidate(t *testing.T) {
	for name, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestMixesResolve(t *testing.T) {
	// The paper's ten Table V mixes plus the two skewed-traffic scenarios.
	if len(Mixes()) != 12 {
		t.Fatalf("want 12 mixes (Table V + skew scenarios), got %d", len(Mixes()))
	}
	for m := 0; m < len(Mixes()); m++ {
		ps, err := MixProfiles(m)
		if err != nil {
			t.Fatalf("mix %d: %v", m, err)
		}
		if len(ps) != 4 {
			t.Fatalf("mix %d has %d apps, want 4", m, len(ps))
		}
	}
	if _, err := MixProfiles(12); err == nil {
		t.Fatal("out-of-range mix accepted")
	}
	if _, err := MixProfiles(-1); err == nil {
		t.Fatal("negative mix accepted")
	}
}

// TestFig2ClassDistribution verifies each generated app's block-class mix
// matches its profile and the real BDI compressor agrees with the class.
func TestFig2ClassDistribution(t *testing.T) {
	for _, name := range []string{"GemsFDTD06", "zeusmp06", "xz17", "milc06", "bwaves17", "omnetpp06"} {
		p := Profiles()[name]
		app, err := NewApp(p, 0, 42)
		if err != nil {
			t.Fatal(err)
		}
		const n = 4000
		var hcr, lcr, inc int
		for b := uint64(0); b < n; b++ {
			c := bdi.Compress(app.Content(b))
			switch bdi.ClassOf(c.Enc) {
			case bdi.ClassHCR:
				hcr++
			case bdi.ClassLCR:
				lcr++
			default:
				inc++
			}
		}
		gotHCR := float64(hcr) / n
		gotLCR := float64(lcr) / n
		wantHCR := p.ZeroFrac + p.HCRFrac
		if math.Abs(gotHCR-wantHCR) > 0.04 {
			t.Errorf("%s: HCR fraction %.3f, want ~%.3f", name, gotHCR, wantHCR)
		}
		if math.Abs(gotLCR-p.LCRFrac) > 0.04 {
			t.Errorf("%s: LCR fraction %.3f, want ~%.3f", name, gotLCR, p.LCRFrac)
		}
	}
}

// TestFig2Average: across all profiles the paper reports ~78% compressible
// (49% HCR + 29% LCR). Our profile set should be in that neighbourhood.
func TestFig2Average(t *testing.T) {
	var hcr, lcr float64
	ps := Profiles()
	for _, p := range ps {
		hcr += p.ZeroFrac + p.HCRFrac
		lcr += p.LCRFrac
	}
	hcr /= float64(len(ps))
	lcr /= float64(len(ps))
	if hcr < 0.35 || hcr > 0.60 {
		t.Errorf("average HCR fraction %.3f outside [0.35,0.60] (paper: 0.49)", hcr)
	}
	if lcr < 0.15 || lcr > 0.40 {
		t.Errorf("average LCR fraction %.3f outside [0.15,0.40] (paper: 0.29)", lcr)
	}
	if tot := hcr + lcr; tot < 0.6 || tot > 0.9 {
		t.Errorf("average compressible fraction %.3f outside [0.6,0.9] (paper: 0.78)", tot)
	}
}

func TestGenContentClasses(t *testing.T) {
	for v := uint32(0); v < 3; v++ {
		for b := uint64(0); b < 200; b++ {
			z := bdi.Compress(GenContent(ClassZeros, 1, b, v))
			if z.Size() != 1 {
				t.Fatalf("zeros block compressed to %d", z.Size())
			}
			h := bdi.Compress(GenContent(ClassHCR, 1, b, v))
			if !h.Enc.IsHCR() {
				t.Fatalf("HCR block %d v%d compressed to %v (%dB)", b, v, h.Enc, h.Size())
			}
			l := bdi.Compress(GenContent(ClassLCR, 1, b, v))
			if !l.Enc.IsLCR() {
				t.Fatalf("LCR block %d v%d compressed to %v (%dB)", b, v, l.Enc, l.Size())
			}
			i := bdi.Compress(GenContent(ClassIncompressible, 1, b, v))
			if i.Size() != 64 {
				t.Fatalf("incompressible block %d v%d compressed to %d", b, v, i.Size())
			}
		}
	}
}

func TestContentDeterministic(t *testing.T) {
	a1, _ := NewApp(Profiles()["zeusmp06"], 100, 7)
	a2, _ := NewApp(Profiles()["zeusmp06"], 100, 7)
	for b := uint64(100); b < 150; b++ {
		c1, c2 := a1.Content(b), a2.Content(b)
		for i := range c1 {
			if c1[i] != c2[i] {
				t.Fatal("content not deterministic")
			}
		}
	}
}

func TestVersionChangesContentNotClass(t *testing.T) {
	app, _ := NewApp(Profiles()["omnetpp06"], 0, 9)
	changed := 0
	for b := uint64(0); b < 100; b++ {
		before := app.Content(b)
		class := bdi.ClassOf(bdi.Compress(before).Enc)
		app.BumpVersion(b)
		after := app.Content(b)
		if bdi.ClassOf(bdi.Compress(after).Enc) != class {
			t.Fatalf("block %d changed class on write", b)
		}
		for i := range before {
			if before[i] != after[i] {
				changed++
				break
			}
		}
	}
	if changed < 50 {
		t.Errorf("only %d/100 blocks changed content on version bump", changed)
	}
}

func TestAccessStreamProperties(t *testing.T) {
	p := Profiles()["zeusmp06"]
	app, err := NewApp(p, AppSpacing, 11)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	var writes int
	var gapSum int
	seen := map[uint64]bool{}
	for i := 0; i < n; i++ {
		acc := app.Next()
		if !app.Owns(acc.Block) {
			t.Fatalf("access outside footprint: %#x", acc.Block)
		}
		if acc.Write {
			writes++
		}
		if acc.Gap <= 0 {
			t.Fatal("non-positive gap")
		}
		gapSum += acc.Gap
		seen[acc.Block] = true
	}
	// Loop component is read-only, so write fraction must be well below
	// the raw component write fractions.
	wf := float64(writes) / n
	if wf <= 0 || wf > 0.5 {
		t.Errorf("write fraction %.3f implausible", wf)
	}
	gapMean := float64(gapSum) / n
	if math.Abs(gapMean-float64(p.GapMean))/float64(p.GapMean) > 0.2 {
		t.Errorf("gap mean %.1f, want ~%d", gapMean, p.GapMean)
	}
	// Touches a large share of the loop set plus more.
	if len(seen) < p.LoopBlocks {
		t.Errorf("touched only %d distinct blocks", len(seen))
	}
}

func TestLoopBlocksAreReadOnly(t *testing.T) {
	p := Profiles()["libquantum06"]
	app, _ := NewApp(p, 0, 3)
	for i := 0; i < 100000; i++ {
		acc := app.Next()
		local := int(acc.Block - app.Base())
		if acc.Write && local < p.LoopBlocks {
			// Writes to the loop region can only come from the random
			// component; they must be rare.
			continue
		}
	}
	// Statistical check: count writes in loop region.
	writes, total := 0, 0
	for i := 0; i < 100000; i++ {
		acc := app.Next()
		if int(acc.Block-app.Base()) < p.LoopBlocks {
			total++
			if acc.Write {
				writes++
			}
		}
	}
	if total == 0 {
		t.Fatal("no loop-region accesses")
	}
	if frac := float64(writes) / float64(total); frac > 0.1 {
		t.Errorf("loop region write fraction %.3f too high", frac)
	}
}

func TestScale(t *testing.T) {
	p := Profiles()["mcf17"]
	s := p.Scale(0.5)
	if s.FootprintBlocks != p.FootprintBlocks/2 {
		t.Errorf("footprint %d, want %d", s.FootprintBlocks, p.FootprintBlocks/2)
	}
	tiny := p.Scale(0.000001)
	if tiny.FootprintBlocks < 16 {
		t.Error("scale must clamp to a usable minimum")
	}
	if err := s.Validate(); err != nil {
		t.Errorf("scaled profile invalid: %v", err)
	}
}

func TestNewMix(t *testing.T) {
	apps, err := NewMix(0, 1, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 4 {
		t.Fatalf("%d apps", len(apps))
	}
	// Address spaces must be disjoint.
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if apps[i].Owns(apps[j].Base()) || apps[j].Owns(apps[i].Base()) {
				t.Fatal("overlapping address spaces")
			}
		}
	}
}

func TestNewMixScale(t *testing.T) {
	full, _ := NewMix(0, 1, 1.0)
	half, _ := NewMix(0, 1, 0.5)
	if half[0].Profile().FootprintBlocks >= full[0].Profile().FootprintBlocks {
		t.Error("scale did not shrink footprints")
	}
}

func TestOwnershipPanics(t *testing.T) {
	app, _ := NewApp(Profiles()["xz17"], AppSpacing, 1)
	for _, fn := range []func(){
		func() { app.Content(0) },
		func() { app.BumpVersion(0) },
		func() { app.ClassOf(0) },
	} {
		func() {
			defer func() { recover() }()
			fn()
			t.Error("foreign block access did not panic")
		}()
	}
}

func TestValidationErrors(t *testing.T) {
	base := Profiles()["zeusmp06"]
	bad1 := base
	bad1.LoopFrac = 0.9 // fractions no longer sum to 1
	bad2 := base
	bad2.LoopBlocks = bad2.FootprintBlocks + 1
	bad3 := base
	bad3.GapMean = 0
	bad4 := base
	bad4.ZeroFrac, bad4.HCRFrac, bad4.LCRFrac = 0.5, 0.5, 0.5
	for i, p := range []Profile{bad1, bad2, bad3, bad4} {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
}

// Property: every access from any mix app stays within its address space,
// and content generation round-trips through BDI.
func TestAppProperty(t *testing.T) {
	apps, err := NewMix(4, 99, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	f := func(step uint8) bool {
		app := apps[int(step)%len(apps)]
		acc := app.Next()
		if !app.Owns(acc.Block) {
			return false
		}
		content := app.Content(acc.Block)
		c := bdi.Compress(content)
		dec, err := bdi.Decompress(c)
		if err != nil {
			return false
		}
		for i := range content {
			if dec[i] != content[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkNext(b *testing.B) {
	app, _ := NewApp(Profiles()["mcf17"], 0, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		app.Next()
	}
}

func BenchmarkContent(b *testing.B) {
	app, _ := NewApp(Profiles()["zeusmp06"], 0, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		app.Content(uint64(i) % 1000)
	}
}

func TestPhasedProfilesValidate(t *testing.T) {
	phased := 0
	for name, p := range Profiles() {
		if len(p.Phases) > 0 {
			phased++
			if p.PhaseLen <= 0 {
				t.Errorf("%s: phases without PhaseLen", name)
			}
		}
	}
	if phased < 3 {
		t.Errorf("only %d phased profiles; want several for set-dueling adaptivity", phased)
	}
}

func TestPhaseRotation(t *testing.T) {
	p := Profiles()["bzip206"]
	app, err := NewApp(p, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i := 0; i < 3*p.PhaseLen*len(app.mixes); i++ {
		seen[app.CurrentPhase()] = true
		app.Next()
	}
	for k := 0; k <= len(p.Phases); k++ {
		if !seen[k] {
			t.Errorf("phase %d never active", k)
		}
	}
}

func TestPhaseChangesWriteBehavior(t *testing.T) {
	p := Profiles()["bzip206"]
	app, _ := NewApp(p, 0, 5)
	writeFracByPhase := map[int][2]int{}
	for i := 0; i < 4*p.PhaseLen*len(app.mixes); i++ {
		ph := app.CurrentPhase()
		acc := app.Next()
		c := writeFracByPhase[ph]
		c[1]++
		if acc.Write {
			c[0]++
		}
		writeFracByPhase[ph] = c
	}
	// Phase 1 (decompression-like) writes less than phase 2 (compression).
	f1 := float64(writeFracByPhase[1][0]) / float64(writeFracByPhase[1][1])
	f2 := float64(writeFracByPhase[2][0]) / float64(writeFracByPhase[2][1])
	if f1 >= f2 {
		t.Errorf("phase write fractions not differentiated: %.3f vs %.3f", f1, f2)
	}
}

func TestBadPhaseValidation(t *testing.T) {
	p := Profiles()["zeusmp06"]
	p.Phases = []PatternMix{{LoopFrac: 0.5}} // sums to 0.5
	p.PhaseLen = 100
	if err := p.Validate(); err == nil {
		t.Error("invalid phase mixture accepted")
	}
	p2 := Profiles()["zeusmp06"]
	p2.Phases = []PatternMix{p2.BaseMix()}
	p2.PhaseLen = 0
	if err := p2.Validate(); err == nil {
		t.Error("phases without PhaseLen accepted")
	}
}
