// Package faultinject drives deterministic fault-injection campaigns
// against the NVM data array and the trace reader. The paper evaluates
// insertion policies on caches that keep degrading over their lifetime
// (§III-B); this package produces that degradation on demand — stuck-at
// byte faults, whole-frame kills, accelerated wear, and region-targeted
// bursts — from a declarative, seedable campaign spec so any degraded
// state is replayable bit-for-bit.
package faultinject

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"repro/internal/nvm"
	"repro/internal/stats"
)

// Kind names one class of injected fault.
type Kind string

// Fault kinds a campaign step can apply.
const (
	// StuckBytes disables Count randomly chosen live bytes (stuck-at
	// hard faults) across the step's region.
	StuckBytes Kind = "stuck_bytes"
	// KillFrames disables Count randomly chosen live frames outright.
	KillFrames Kind = "kill_frames"
	// WearMultiplier advances every region frame's shared wear level to
	// Mult x the endurance-model mean (no-op for frames already past it),
	// letting the frame's own sampled limits decide which bytes die.
	WearMultiplier Kind = "wear_multiplier"
	// ToCapacity kills random live frames in the region until the whole
	// array's effective capacity fraction falls to Target or below.
	ToCapacity Kind = "to_capacity"
)

// Step is one declarative campaign action. The zero region ([0,0) sets
// and ways) means the whole array. SetHi/WayHi are exclusive bounds.
type Step struct {
	Kind   Kind    `json:"kind"`
	Count  int     `json:"count,omitempty"`  // stuck_bytes, kill_frames
	Mult   float64 `json:"mult,omitempty"`   // wear_multiplier
	Target float64 `json:"target,omitempty"` // to_capacity
	SetLo  int     `json:"set_lo,omitempty"`
	SetHi  int     `json:"set_hi,omitempty"`
	WayLo  int     `json:"way_lo,omitempty"`
	WayHi  int     `json:"way_hi,omitempty"`
}

// Spec is a full campaign: a seed and an ordered step list. Equal specs
// applied to identically built arrays produce identical fault states.
type Spec struct {
	Seed  uint64 `json:"seed"`
	Steps []Step `json:"steps"`
}

// Validate rejects malformed steps before any fault is applied.
func (s Spec) Validate() error {
	var errs []error
	for i, st := range s.Steps {
		if err := st.validate(); err != nil {
			errs = append(errs, fmt.Errorf("step %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

func (st Step) validate() error {
	switch st.Kind {
	case StuckBytes, KillFrames:
		if st.Count <= 0 {
			return fmt.Errorf("%s: count %d must be positive", st.Kind, st.Count)
		}
	case WearMultiplier:
		if st.Mult <= 0 {
			return fmt.Errorf("%s: mult %g must be positive", st.Kind, st.Mult)
		}
	case ToCapacity:
		if st.Target < 0 || st.Target >= 1 {
			return fmt.Errorf("%s: target %g outside [0,1)", st.Kind, st.Target)
		}
	default:
		return fmt.Errorf("unknown kind %q", st.Kind)
	}
	if st.SetLo < 0 || st.WayLo < 0 || st.SetHi < 0 || st.WayHi < 0 {
		return fmt.Errorf("%s: negative region bound", st.Kind)
	}
	if (st.SetHi != 0 && st.SetHi <= st.SetLo) || (st.WayHi != 0 && st.WayHi <= st.WayLo) {
		return fmt.Errorf("%s: empty region", st.Kind)
	}
	return nil
}

// ParseSpec decodes and validates a JSON campaign spec.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("faultinject: parse spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, fmt.Errorf("faultinject: invalid spec: %w", err)
	}
	return s, nil
}

// LoadSpec reads and validates a campaign spec from a JSON file.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("faultinject: %w", err)
	}
	s, err := ParseSpec(data)
	if err != nil {
		return Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// CapacityRamp builds a spec that degrades an array in even capacity
// steps from just below `from` down to `to` (inclusive), e.g.
// CapacityRamp(seed, 1.0, 0.5, 0.05) targets 0.95, 0.90, ... 0.50. The
// faultstudy command uses it to sample a degradation curve.
func CapacityRamp(seed uint64, from, to, step float64) Spec {
	s := Spec{Seed: seed}
	if step <= 0 {
		return s
	}
	for i := 1; ; i++ {
		t := from - float64(i)*step
		if t < to-1e-9 {
			break
		}
		s.Steps = append(s.Steps, Step{Kind: ToCapacity, Target: t})
	}
	return s
}

// StepResult records what one applied step did to the array.
type StepResult struct {
	Index         int     // position in Spec.Steps
	Kind          Kind    // step kind, echoed for reporting
	BytesDisabled int     // bytes newly disabled by this step
	FramesKilled  int     // frames newly dead after this step
	Capacity      float64 // array effective capacity fraction after
	LiveFrames    int     // live frames after
}

// Campaign applies a spec to an array one step at a time, so callers can
// interleave measurements between degradation steps.
type Campaign struct {
	arr  *nvm.Array
	rng  *stats.RNG
	spec Spec
	pos  int
}

// NewCampaign validates the spec and binds it to an array.
func NewCampaign(arr *nvm.Array, spec Spec) (*Campaign, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("faultinject: %w", err)
	}
	return &Campaign{arr: arr, rng: stats.NewRNG(spec.Seed), spec: spec}, nil
}

// Remaining returns the number of steps not yet applied.
func (c *Campaign) Remaining() int { return len(c.spec.Steps) - c.pos }

// Next applies the next step and reports what it did; ok is false when
// the campaign is exhausted.
func (c *Campaign) Next() (res StepResult, ok bool) {
	if c.pos >= len(c.spec.Steps) {
		return StepResult{}, false
	}
	st := c.spec.Steps[c.pos]
	res = StepResult{Index: c.pos, Kind: st.Kind}
	c.pos++
	deadBefore := c.arr.Sets()*c.arr.Ways() - c.arr.LiveFrames()
	switch st.Kind {
	case StuckBytes:
		res.BytesDisabled = c.stuckBytes(st)
	case KillFrames:
		res.BytesDisabled = c.killFrames(st, func(killed int) bool { return killed < st.Count })
	case WearMultiplier:
		res.BytesDisabled = c.wearMultiplier(st)
	case ToCapacity:
		res.BytesDisabled = c.killFrames(st, func(int) bool {
			return c.arr.EffectiveCapacityFraction() > st.Target
		})
	}
	res.FramesKilled = c.arr.Sets()*c.arr.Ways() - c.arr.LiveFrames() - deadBefore
	res.Capacity = c.arr.EffectiveCapacityFraction()
	res.LiveFrames = c.arr.LiveFrames()
	return res, true
}

// Run applies every remaining step.
func (c *Campaign) Run() []StepResult {
	var out []StepResult
	for {
		res, ok := c.Next()
		if !ok {
			return out
		}
		out = append(out, res)
	}
}

// region resolves a step's bounds against the array geometry.
func (c *Campaign) region(st Step) (setLo, setHi, wayLo, wayHi int) {
	setLo, setHi = st.SetLo, st.SetHi
	wayLo, wayHi = st.WayLo, st.WayHi
	if setHi == 0 || setHi > c.arr.Sets() {
		setHi = c.arr.Sets()
	}
	if wayHi == 0 || wayHi > c.arr.Ways() {
		wayHi = c.arr.Ways()
	}
	if setLo > setHi {
		setLo = setHi
	}
	if wayLo > wayHi {
		wayLo = wayHi
	}
	return
}

func (c *Campaign) frameAt(st Step, setLo, setHi, wayLo, wayHi int) *nvm.Frame {
	set := setLo + c.rng.Intn(setHi-setLo)
	way := wayLo + c.rng.Intn(wayHi-wayLo)
	return c.arr.Frame(set, way)
}

// stuckBytes disables st.Count live bytes at random positions in the
// region. The attempt budget bounds the walk on nearly-saturated
// regions; the shortfall shows up in the StepResult.
func (c *Campaign) stuckBytes(st Step) int {
	setLo, setHi, wayLo, wayHi := c.region(st)
	if setHi == setLo || wayHi == wayLo {
		return 0
	}
	disabled := 0
	for attempts := 0; disabled < st.Count && attempts < 64*st.Count+1024; attempts++ {
		f := c.frameAt(st, setLo, setHi, wayLo, wayHi)
		if f.Dead() {
			continue
		}
		i := c.rng.Intn(nvm.FrameBytes)
		if f.FaultMap().Get(i) {
			continue
		}
		f.InjectFault(i)
		disabled++
	}
	return disabled
}

// killFrames disables random live region frames while more(killed)
// holds, returning the number of bytes the kills took down.
func (c *Campaign) killFrames(st Step, more func(killed int) bool) int {
	setLo, setHi, wayLo, wayHi := c.region(st)
	if setHi == setLo || wayHi == wayLo {
		return 0
	}
	live := 0
	for s := setLo; s < setHi; s++ {
		for w := wayLo; w < wayHi; w++ {
			if !c.arr.Frame(s, w).Dead() {
				live++
			}
		}
	}
	killed, bytes := 0, 0
	for live > 0 && more(killed) {
		f := c.frameAt(st, setLo, setHi, wayLo, wayHi)
		if f.Dead() {
			continue
		}
		bytes += f.LiveBytes()
		f.Disable()
		killed++
		live--
	}
	return bytes
}

// wearMultiplier fast-forwards every region frame's wear to Mult x the
// endurance-model mean, returning the number of bytes that died.
func (c *Campaign) wearMultiplier(st Step) int {
	setLo, setHi, wayLo, wayHi := c.region(st)
	target := st.Mult * c.arr.Model().Mean
	died := 0
	for s := setLo; s < setHi; s++ {
		for w := wayLo; w < wayHi; w++ {
			died += c.arr.Frame(s, w).AdvanceTo(target)
		}
	}
	return died
}
