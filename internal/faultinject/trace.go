package faultinject

import "repro/internal/stats"

// TraceFault describes deterministic corruption applied to a serialized
// trace: tail truncation (a partially written file) and random bit flips
// (media rot). The trace reader must survive both with a positioned
// error, never a panic — the trace fuzz target and cmd/validate drive
// this through the decoder.
type TraceFault struct {
	Seed     uint64 `json:"seed"`
	Truncate int    `json:"truncate,omitempty"` // bytes cut from the tail
	BitFlips int    `json:"bit_flips,omitempty"`
}

// Apply returns a corrupted copy of data; the input is not modified.
// Equal (fault, data) pairs always return identical bytes.
func (tf TraceFault) Apply(data []byte) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	if tf.Truncate > 0 {
		if tf.Truncate >= len(out) {
			return out[:0]
		}
		out = out[:len(out)-tf.Truncate]
	}
	if tf.BitFlips > 0 && len(out) > 0 {
		rng := stats.NewRNG(tf.Seed)
		for i := 0; i < tf.BitFlips; i++ {
			pos := rng.Intn(len(out))
			out[pos] ^= 1 << uint(rng.Intn(8))
		}
	}
	return out
}
