package faultinject

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"repro/internal/nvm"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func newArray(t *testing.T, sets, ways int, gran nvm.Granularity) *nvm.Array {
	t.Helper()
	model := nvm.EnduranceModel{Mean: 1e10, CV: 0.25}
	return nvm.NewArray(sets, ways, model, stats.NewRNG(42), gran)
}

func TestStuckBytesCountAndConsistency(t *testing.T) {
	arr := newArray(t, 16, 8, nvm.ByteDisabling)
	c, err := NewCampaign(arr, Spec{Seed: 7, Steps: []Step{{Kind: StuckBytes, Count: 200}}})
	if err != nil {
		t.Fatal(err)
	}
	res, ok := c.Next()
	if !ok || res.BytesDisabled != 200 {
		t.Fatalf("disabled %d bytes, ok=%v", res.BytesDisabled, ok)
	}
	total := 0
	for _, f := range arr.Frames() {
		if f.FaultyBytes() != f.FaultMap().Count() {
			t.Fatalf("fault map count %d != faulty bytes %d", f.FaultMap().Count(), f.FaultyBytes())
		}
		total += f.FaultyBytes()
	}
	if total != 200 {
		t.Fatalf("array holds %d faulty bytes, want 200", total)
	}
	if _, ok := c.Next(); ok {
		t.Fatal("exhausted campaign produced a step")
	}
}

func TestKillFramesAndCapacity(t *testing.T) {
	arr := newArray(t, 16, 8, nvm.FrameDisabling)
	c, err := NewCampaign(arr, Spec{Seed: 9, Steps: []Step{{Kind: KillFrames, Count: 32}}})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := c.Next()
	if res.FramesKilled != 32 || arr.LiveFrames() != 16*8-32 {
		t.Fatalf("killed %d, live %d", res.FramesKilled, arr.LiveFrames())
	}
	want := float64(16*8-32) / float64(16*8)
	if res.Capacity > want+1e-9 {
		t.Fatalf("capacity %g after killing a quarter of the frames", res.Capacity)
	}
}

func TestToCapacityReachesTarget(t *testing.T) {
	arr := newArray(t, 32, 8, nvm.ByteDisabling)
	c, err := NewCampaign(arr, Spec{Seed: 3, Steps: []Step{{Kind: ToCapacity, Target: 0.5}}})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := c.Next()
	if res.Capacity > 0.5 {
		t.Fatalf("capacity %g, want <= 0.5", res.Capacity)
	}
	// One frame kill below the threshold, not a wild overshoot.
	if res.Capacity < 0.5-2.0/float64(32*8) {
		t.Fatalf("capacity %g overshot target", res.Capacity)
	}
}

func TestWearMultiplierKillsWeakBytes(t *testing.T) {
	arr := newArray(t, 8, 4, nvm.ByteDisabling)
	c, err := NewCampaign(arr, Spec{Seed: 1, Steps: []Step{{Kind: WearMultiplier, Mult: 1.0}}})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := c.Next()
	// Advancing wear to the endurance mean must kill roughly half of all
	// bytes (normal distribution), certainly more than a quarter.
	if res.BytesDisabled < 8*4*nvm.FrameBytes/4 {
		t.Fatalf("only %d bytes died at mean wear", res.BytesDisabled)
	}
	for _, f := range arr.Frames() {
		if f.Wear() < 1e10 && !f.Dead() {
			t.Fatalf("live frame wear %g below target", f.Wear())
		}
	}
}

func TestRegionTargetedBurst(t *testing.T) {
	arr := newArray(t, 16, 8, nvm.ByteDisabling)
	spec := Spec{Seed: 11, Steps: []Step{{
		Kind: StuckBytes, Count: 100,
		SetLo: 4, SetHi: 8, WayLo: 2, WayHi: 6,
	}}}
	c, err := NewCampaign(arr, spec)
	if err != nil {
		t.Fatal(err)
	}
	c.Next()
	for s := 0; s < 16; s++ {
		for w := 0; w < 8; w++ {
			inRegion := s >= 4 && s < 8 && w >= 2 && w < 6
			if fb := arr.Frame(s, w).FaultyBytes(); !inRegion && fb != 0 {
				t.Fatalf("frame (%d,%d) outside region has %d faults", s, w, fb)
			}
		}
	}
}

func TestCampaignDeterminism(t *testing.T) {
	spec := Spec{Seed: 123, Steps: []Step{
		{Kind: StuckBytes, Count: 150},
		{Kind: KillFrames, Count: 10},
		{Kind: ToCapacity, Target: 0.7},
	}}
	run := func() ([]StepResult, []int) {
		arr := newArray(t, 16, 8, nvm.ByteDisabling)
		c, err := NewCampaign(arr, spec)
		if err != nil {
			t.Fatal(err)
		}
		results := c.Run()
		var faults []int
		for _, f := range arr.Frames() {
			faults = append(faults, f.FaultyBytes())
		}
		return results, faults
	}
	r1, f1 := run()
	r2, f2 := run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("step results diverged:\n%v\n%v", r1, r2)
	}
	if !reflect.DeepEqual(f1, f2) {
		t.Fatal("per-frame fault distribution diverged between same-seed runs")
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Steps: []Step{{Kind: "melt_cache"}}},
		{Steps: []Step{{Kind: StuckBytes, Count: 0}}},
		{Steps: []Step{{Kind: KillFrames, Count: -3}}},
		{Steps: []Step{{Kind: WearMultiplier, Mult: 0}}},
		{Steps: []Step{{Kind: ToCapacity, Target: 1.5}}},
		{Steps: []Step{{Kind: StuckBytes, Count: 1, SetLo: 4, SetHi: 2}}},
		{Steps: []Step{{Kind: StuckBytes, Count: 1, WayLo: -1}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d accepted: %+v", i, s)
		}
	}
}

func TestSpecJSONRoundtrip(t *testing.T) {
	in := []byte(`{"seed": 5, "steps": [
		{"kind": "stuck_bytes", "count": 10, "set_lo": 1, "set_hi": 3},
		{"kind": "to_capacity", "target": 0.5}
	]}`)
	s, err := ParseSpec(in)
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 5 || len(s.Steps) != 2 || s.Steps[1].Target != 0.5 {
		t.Fatalf("parsed %+v", s)
	}
	if _, err := ParseSpec([]byte(`{"seed": 1, "bogus": true}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParseSpec([]byte(`{"steps":[{"kind":"nope"}]}`)); err == nil {
		t.Fatal("invalid step accepted")
	}
}

func TestCapacityRamp(t *testing.T) {
	s := CapacityRamp(1, 1.0, 0.5, 0.1)
	if len(s.Steps) != 5 {
		t.Fatalf("%d steps: %+v", len(s.Steps), s.Steps)
	}
	if s.Steps[0].Target != 0.9 || s.Steps[4].Target > 0.5+1e-9 {
		t.Fatalf("targets %+v", s.Steps)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(CapacityRamp(1, 1.0, 0.5, 0).Steps); got != 0 {
		t.Fatalf("zero step produced %d steps", got)
	}
}

func recordTrace(t *testing.T, n int) []byte {
	t.Helper()
	app, err := workload.NewApp(workload.Profiles()["xz17"], 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Record(app, n, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestTraceFaultTruncation(t *testing.T) {
	data := recordTrace(t, 50)
	corrupt := TraceFault{Truncate: 1}.Apply(data)
	if len(corrupt) != len(data)-1 {
		t.Fatalf("len %d, want %d", len(corrupt), len(data)-1)
	}
	r := trace.NewReader(bytes.NewReader(corrupt))
	var err error
	for err == nil {
		_, err = r.Read()
	}
	if err == io.EOF {
		t.Fatal("truncated trace read cleanly")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
}

func TestTraceFaultBitFlipsDeterministic(t *testing.T) {
	data := recordTrace(t, 50)
	orig := append([]byte(nil), data...)
	a := TraceFault{Seed: 4, BitFlips: 16}.Apply(data)
	b := TraceFault{Seed: 4, BitFlips: 16}.Apply(data)
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed corruption diverged")
	}
	if bytes.Equal(a, data) {
		t.Fatal("bit flips changed nothing")
	}
	if !bytes.Equal(data, orig) {
		t.Fatal("Apply mutated its input")
	}
	c := TraceFault{Seed: 5, BitFlips: 16}.Apply(data)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical corruption")
	}
	// Whatever the corruption, the reader returns records or errors —
	// never panics (the fuzz target covers this broadly; this is the
	// campaign-level smoke check).
	r := trace.NewReader(bytes.NewReader(a))
	for i := 0; i < 1000; i++ {
		if _, err := r.Read(); err != nil {
			break
		}
	}
}

func TestTraceFaultFullTruncation(t *testing.T) {
	data := recordTrace(t, 5)
	if got := (TraceFault{Truncate: len(data) + 10}).Apply(data); len(got) != 0 {
		t.Fatalf("over-truncation left %d bytes", len(got))
	}
}
