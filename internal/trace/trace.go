// Package trace records and replays memory-access traces in a compact
// binary format. The paper's design-space exploration runs on the
// trace-driven HyCSim simulator; this package provides the equivalent
// capability: capture the access stream of a synthetic application (or
// any generator) once, then replay it deterministically across many
// policy configurations, guaranteeing every configuration sees an
// identical stimulus.
//
// Format (little-endian):
//
//	magic "HLLC" | version u8 | reserved [3]u8
//	record*:
//	  header byte: bit0 = write, bit1..7 = gap (0..126; 127 = extended)
//	  [gap varint when extended]
//	  block delta: signed varint from the previous block address
//
// Block addresses are delta-encoded because loops and streams dominate
// real traces; typical records take 2-3 bytes.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/workload"
)

var magic = [4]byte{'H', 'L', 'L', 'C'}

// Version of the on-disk format.
const Version = 1

// ErrBadMagic indicates the stream is not a trace file.
var ErrBadMagic = errors.New("trace: bad magic")

// Writer streams access records to an io.Writer.
type Writer struct {
	w         *bufio.Writer
	prevBlock uint64
	count     uint64
	headerOut bool
}

// NewWriter wraps w. The header is emitted lazily on the first record (or
// on Flush).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

func (t *Writer) writeHeader() error {
	if t.headerOut {
		return nil
	}
	t.headerOut = true
	if _, err := t.w.Write(magic[:]); err != nil {
		return err
	}
	_, err := t.w.Write([]byte{Version, 0, 0, 0})
	return err
}

// Write appends one access record.
func (t *Writer) Write(acc workload.Access) error {
	if err := t.writeHeader(); err != nil {
		return err
	}
	if acc.Gap < 0 {
		return fmt.Errorf("trace: negative gap %d", acc.Gap)
	}
	head := byte(0)
	if acc.Write {
		head |= 1
	}
	extended := acc.Gap >= 127
	if extended {
		head |= 127 << 1
	} else {
		head |= byte(acc.Gap) << 1
	}
	if err := t.w.WriteByte(head); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	if extended {
		n := binary.PutUvarint(buf[:], uint64(acc.Gap))
		if _, err := t.w.Write(buf[:n]); err != nil {
			return err
		}
	}
	delta := int64(acc.Block - t.prevBlock)
	n := binary.PutVarint(buf[:], delta)
	if _, err := t.w.Write(buf[:n]); err != nil {
		return err
	}
	t.prevBlock = acc.Block
	t.count++
	return nil
}

// Count returns the number of records written.
func (t *Writer) Count() uint64 { return t.count }

// Flush writes buffered data (and the header, for empty traces).
func (t *Writer) Flush() error {
	if err := t.writeHeader(); err != nil {
		return err
	}
	return t.w.Flush()
}

// Reader decodes a trace stream.
type Reader struct {
	r         *bufio.Reader
	prevBlock uint64
	started   bool
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

func (t *Reader) readHeader() error {
	if t.started {
		return nil
	}
	t.started = true
	var hdr [8]byte
	if _, err := io.ReadFull(t.r, hdr[:]); err != nil {
		return err
	}
	if [4]byte{hdr[0], hdr[1], hdr[2], hdr[3]} != magic {
		return ErrBadMagic
	}
	if hdr[4] != Version {
		return fmt.Errorf("trace: unsupported version %d", hdr[4])
	}
	return nil
}

// Read decodes the next record; io.EOF signals a clean end of trace.
func (t *Reader) Read() (workload.Access, error) {
	var acc workload.Access
	if err := t.readHeader(); err != nil {
		return acc, err
	}
	head, err := t.r.ReadByte()
	if err != nil {
		return acc, err // io.EOF passes through
	}
	acc.Write = head&1 != 0
	gap := int(head >> 1)
	if gap == 127 {
		g, err := binary.ReadUvarint(t.r)
		if err != nil {
			return acc, unexpected(err)
		}
		gap = int(g)
	}
	acc.Gap = gap
	delta, err := binary.ReadVarint(t.r)
	if err != nil {
		return acc, unexpected(err)
	}
	t.prevBlock += uint64(delta)
	acc.Block = t.prevBlock
	return acc, nil
}

// unexpected maps mid-record EOF to ErrUnexpectedEOF so callers can tell
// truncation from clean end of stream.
func unexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Record captures n accesses from an application into w.
func Record(app *workload.App, n int, w io.Writer) error {
	tw := NewWriter(w)
	for i := 0; i < n; i++ {
		if err := tw.Write(app.Next()); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// Replayer adapts a recorded trace to the workload generator interface:
// it loops the trace when Rewind is enabled and exhausted.
type Replayer struct {
	records []workload.Access
	pos     int
	// Loop restarts the trace at the end instead of panicking.
	Loop bool
}

// Load reads an entire trace into memory for replay.
func Load(r io.Reader) (*Replayer, error) {
	tr := NewReader(r)
	var recs []workload.Access
	for {
		acc, err := tr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		recs = append(recs, acc)
	}
	return &Replayer{records: recs, Loop: true}, nil
}

// Len returns the number of records in the trace.
func (r *Replayer) Len() int { return len(r.records) }

// Next returns the next access, looping if enabled.
func (r *Replayer) Next() workload.Access {
	if r.pos >= len(r.records) {
		if !r.Loop || len(r.records) == 0 {
			panic("trace: replay past end of trace")
		}
		r.pos = 0
	}
	acc := r.records[r.pos]
	r.pos++
	return acc
}
