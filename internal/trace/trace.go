// Package trace records and replays memory-access traces in a compact
// binary format. The paper's design-space exploration runs on the
// trace-driven HyCSim simulator; this package provides the equivalent
// capability: capture the access stream of a synthetic application (or
// any generator) once, then replay it deterministically across many
// policy configurations, guaranteeing every configuration sees an
// identical stimulus.
//
// Format (little-endian):
//
//	magic "HLLC" | version u8 | reserved [3]u8
//	record*:
//	  header byte: bit0 = write, bit1..7 = gap (0..126; 127 = extended)
//	  [gap varint when extended]
//	  block delta: signed varint from the previous block address
//
// Block addresses are delta-encoded because loops and streams dominate
// real traces; typical records take 2-3 bytes.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/workload"
)

var magic = [4]byte{'H', 'L', 'L', 'C'}

// Version of the on-disk format.
const Version = 1

// ErrBadMagic indicates the stream is not a trace file.
var ErrBadMagic = errors.New("trace: bad magic")

// Writer streams access records to an io.Writer.
type Writer struct {
	w         *bufio.Writer
	prevBlock uint64
	count     uint64
	headerOut bool
}

// NewWriter wraps w. The header is emitted lazily on the first record (or
// on Flush).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

func (t *Writer) writeHeader() error {
	if t.headerOut {
		return nil
	}
	t.headerOut = true
	if _, err := t.w.Write(magic[:]); err != nil {
		return err
	}
	_, err := t.w.Write([]byte{Version, 0, 0, 0})
	return err
}

// Write appends one access record.
func (t *Writer) Write(acc workload.Access) error {
	if err := t.writeHeader(); err != nil {
		return err
	}
	if acc.Gap < 0 {
		return fmt.Errorf("trace: negative gap %d", acc.Gap)
	}
	head := byte(0)
	if acc.Write {
		head |= 1
	}
	extended := acc.Gap >= 127
	if extended {
		head |= 127 << 1
	} else {
		head |= byte(acc.Gap) << 1
	}
	if err := t.w.WriteByte(head); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	if extended {
		n := binary.PutUvarint(buf[:], uint64(acc.Gap))
		if _, err := t.w.Write(buf[:n]); err != nil {
			return err
		}
	}
	delta := int64(acc.Block - t.prevBlock)
	n := binary.PutVarint(buf[:], delta)
	if _, err := t.w.Write(buf[:n]); err != nil {
		return err
	}
	t.prevBlock = acc.Block
	t.count++
	return nil
}

// Count returns the number of records written.
func (t *Writer) Count() uint64 { return t.count }

// Flush writes buffered data (and the header, for empty traces).
func (t *Writer) Flush() error {
	if err := t.writeHeader(); err != nil {
		return err
	}
	return t.w.Flush()
}

// Reader decodes a trace stream. Decoding failures are returned as
// errors carrying the record index and byte offset of the fault — the
// reader never panics, whatever the input bytes.
type Reader struct {
	r         *bufio.Reader
	prevBlock uint64
	started   bool
	off       int64  // bytes consumed from the underlying stream
	rec       uint64 // complete records decoded so far
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Offset returns the number of bytes consumed from the stream.
func (t *Reader) Offset() int64 { return t.off }

// Records returns the number of complete records decoded.
func (t *Reader) Records() uint64 { return t.rec }

// readByte reads one byte, keeping the offset current. It implements
// io.ByteReader so the varint decoders count through it too.
func (t *Reader) ReadByte() (byte, error) {
	b, err := t.r.ReadByte()
	if err == nil {
		t.off++
	}
	return b, err
}

func (t *Reader) readHeader() error {
	if t.started {
		return nil
	}
	t.started = true
	var hdr [8]byte
	n, err := io.ReadFull(t.r, hdr[:])
	t.off += int64(n)
	if err != nil {
		if err == io.EOF && n == 0 {
			return io.ErrUnexpectedEOF // not even a header: not a trace
		}
		return t.fault(unexpected(err))
	}
	if [4]byte{hdr[0], hdr[1], hdr[2], hdr[3]} != magic {
		return ErrBadMagic
	}
	if hdr[4] != Version {
		return fmt.Errorf("trace: unsupported version %d", hdr[4])
	}
	return nil
}

// Read decodes the next record; io.EOF signals a clean end of trace. Any
// other failure is returned with record/offset context wrapping the
// underlying error (truncation surfaces as io.ErrUnexpectedEOF).
func (t *Reader) Read() (workload.Access, error) {
	var acc workload.Access
	if err := t.readHeader(); err != nil {
		return acc, err
	}
	head, err := t.ReadByte()
	if err != nil {
		if err == io.EOF {
			return acc, io.EOF // clean end at a record boundary
		}
		return acc, t.fault(err)
	}
	acc.Write = head&1 != 0
	gap := int(head >> 1)
	if gap == 127 {
		g, err := binary.ReadUvarint(t)
		if err != nil {
			return acc, t.fault(unexpected(err))
		}
		if g > uint64(maxInt) {
			return acc, t.fault(fmt.Errorf("gap %d overflows int", g))
		}
		gap = int(g)
	}
	acc.Gap = gap
	delta, err := binary.ReadVarint(t)
	if err != nil {
		return acc, t.fault(unexpected(err))
	}
	t.prevBlock += uint64(delta)
	acc.Block = t.prevBlock
	t.rec++
	return acc, nil
}

const maxInt = int(^uint(0) >> 1)

// fault wraps a decoding error with the position context every caller
// reports: the index of the record being decoded and the byte offset the
// reader had consumed when decoding failed.
func (t *Reader) fault(err error) error {
	return fmt.Errorf("trace: record %d (byte offset %d): %w", t.rec, t.off, err)
}

// unexpected maps mid-record EOF to ErrUnexpectedEOF so callers can tell
// truncation from clean end of stream.
func unexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Record captures n accesses from an application into w.
func Record(app *workload.App, n int, w io.Writer) error {
	tw := NewWriter(w)
	for i := 0; i < n; i++ {
		if err := tw.Write(app.Next()); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// ErrReplayEnd reports a replay past the end of a non-looping trace.
var ErrReplayEnd = errors.New("trace: replay past end of trace")

// Replayer adapts a recorded trace to the workload generator interface:
// it loops the trace when Loop is enabled and exhausted. Replaying past
// the end of a non-looping trace is not a panic: ReadNext returns
// ErrReplayEnd, and the Next convenience form records it as the sticky
// Err while returning zero accesses.
type Replayer struct {
	records []workload.Access
	pos     int
	err     error
	// Loop restarts the trace at the end instead of failing.
	Loop bool
}

// Load reads an entire trace into memory for replay.
func Load(r io.Reader) (*Replayer, error) {
	tr := NewReader(r)
	var recs []workload.Access
	for {
		acc, err := tr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		recs = append(recs, acc)
	}
	return &Replayer{records: recs, Loop: true}, nil
}

// LoadFile loads a trace from disk, adding the file name to any error.
func LoadFile(path string) (*Replayer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	rep, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// Len returns the number of records in the trace.
func (r *Replayer) Len() int { return len(r.records) }

// Err returns the first replay failure Next swallowed (nil while the
// replay is healthy). Callers driving a Replayer through the error-blind
// Program interface must check it when the run completes.
func (r *Replayer) Err() error { return r.err }

// ReadNext returns the next access, looping if enabled; it returns
// ErrReplayEnd when a non-looping (or empty) trace is exhausted.
func (r *Replayer) ReadNext() (workload.Access, error) {
	if r.pos >= len(r.records) {
		if !r.Loop || len(r.records) == 0 {
			return workload.Access{}, ErrReplayEnd
		}
		r.pos = 0
	}
	acc := r.records[r.pos]
	r.pos++
	return acc, nil
}

// Next returns the next access, looping if enabled. Exhaustion of a
// non-looping trace yields zero-valued accesses and is reported through
// Err rather than a panic.
func (r *Replayer) Next() workload.Access {
	acc, err := r.ReadNext()
	if err != nil && r.err == nil {
		r.err = err
	}
	return acc
}
