package trace

import (
	"bytes"
	"testing"

	"repro/internal/hier"
	"repro/internal/hybrid"
	"repro/internal/nvm"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/workload"
)

// TestTraceDrivenEqualsGeneratorDriven is the HyCSim-fidelity check: a
// system driven by recorded traces must produce byte-identical LLC
// statistics to one driven by the live generators the traces came from.
func TestTraceDrivenEqualsGeneratorDriven(t *testing.T) {
	const mix, seed, scale = 2, 7, 0.15

	newLLC := func() *hybrid.LLC {
		return hybrid.New(hybrid.Config{
			Sets: 128, SRAMWays: 4, NVMWays: 12,
			Policy:     policy.CARWR{},
			Thresholds: hybrid.FixedThreshold(58),
			Endurance:  nvm.EnduranceModel{Mean: 1e10, CV: 0.2},
			Sampler:    stats.NewRNG(3),
		})
	}
	cfg := hier.DefaultConfig()
	cfg.EpochCycles = 250_000

	// Generator-driven run.
	genApps, err := workload.NewMix(mix, seed, scale)
	if err != nil {
		t.Fatal(err)
	}
	genSys := hier.New(cfg, newLLC(), genApps)
	genStats := genSys.Run(1_500_000)

	// Record traces from fresh identical apps, then replay.
	recApps, _ := workload.NewMix(mix, seed, scale)
	contentApps, _ := workload.NewMix(mix, seed, scale)
	progs := make([]hier.Program, len(recApps))
	for i, app := range recApps {
		var buf bytes.Buffer
		if err := Record(app, 600_000, &buf); err != nil {
			t.Fatal(err)
		}
		rep, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		progs[i] = NewProgram(rep, contentApps[i])
	}
	trcSys := hier.NewFromPrograms(cfg, newLLC(), progs)
	trcStats := trcSys.Run(1_500_000)

	if genStats.LLC != trcStats.LLC {
		t.Fatalf("trace-driven stats diverge:\n gen %+v\n trc %+v", genStats.LLC, trcStats.LLC)
	}
	if genStats.MeanIPC != trcStats.MeanIPC {
		t.Fatalf("IPC diverges: %v vs %v", genStats.MeanIPC, trcStats.MeanIPC)
	}
}
