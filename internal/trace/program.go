package trace

import "repro/internal/workload"

// Program adapts a recorded trace to the hierarchy's per-core stimulus
// interface: accesses come from the replayer, while block contents and
// versions are served by a content model — typically the same application
// the trace was recorded from, so contents stay consistent with the
// recorded address stream.
type Program struct {
	rep     *Replayer
	content ContentModel
}

// ContentModel serves block ownership, versions and contents for a
// replayed trace. *workload.App satisfies it.
type ContentModel interface {
	Owns(block uint64) bool
	BumpVersion(block uint64)
	Content(block uint64) []byte
	// ContentInto is the allocation-free variant: it writes the contents
	// into dst when its capacity suffices and returns the (possibly grown)
	// slice.
	ContentInto(dst []byte, block uint64) []byte
}

// NewProgram pairs a replayer with a content model.
func NewProgram(rep *Replayer, content ContentModel) *Program {
	return &Program{rep: rep, content: content}
}

// Next implements hier.Program.
func (p *Program) Next() workload.Access { return p.rep.Next() }

// Owns implements hier.Program.
func (p *Program) Owns(block uint64) bool { return p.content.Owns(block) }

// BumpVersion implements hier.Program.
func (p *Program) BumpVersion(block uint64) { p.content.BumpVersion(block) }

// Content implements hier.Program.
func (p *Program) Content(block uint64) []byte { return p.content.Content(block) }

// ContentInto implements hier.Program without allocating.
func (p *Program) ContentInto(dst []byte, block uint64) []byte {
	return p.content.ContentInto(dst, block)
}

// Err surfaces the replayer's sticky replay error (nil while healthy).
func (p *Program) Err() error { return p.rep.Err() }
