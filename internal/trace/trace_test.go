package trace

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func TestRoundtripSimple(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	in := []workload.Access{
		{Block: 100, Write: false, Gap: 5},
		{Block: 101, Write: true, Gap: 0},
		{Block: 50, Write: false, Gap: 126},
		{Block: 1 << 40, Write: true, Gap: 127},
		{Block: 0, Write: false, Gap: 100000},
	}
	for _, a := range in {
		if err := w.Write(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(in)) {
		t.Fatalf("count = %d", w.Count())
	}
	r := NewReader(&buf)
	for i, want := range in {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d: %+v != %+v", i, got, want)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want clean EOF, got %v", err)
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("empty trace should EOF cleanly, got %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("NOPE0000")))
	if _, err := r.Read(); err != ErrBadMagic {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
}

func TestBadVersion(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{'H', 'L', 'L', 'C', 99, 0, 0, 0}))
	if _, err := r.Read(); err == nil {
		t.Fatal("unsupported version accepted")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(workload.Access{Block: 1 << 50, Gap: 3}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	r := NewReader(bytes.NewReader(data[:len(data)-1]))
	_, err := r.Read()
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
	// The error carries the faulting record and byte offset for operators
	// locating corruption in long traces.
	if !strings.Contains(err.Error(), "record 0") || !strings.Contains(err.Error(), "byte offset") {
		t.Fatalf("error lacks position context: %v", err)
	}
}

func TestReaderOffsetTracking(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 3; i++ {
		if err := w.Write(workload.Access{Block: uint64(i * 1000), Gap: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	for i := 0; i < 3; i++ {
		if _, err := r.Read(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	if r.Offset() != int64(buf.Len()) {
		t.Fatalf("offset %d, want %d", r.Offset(), buf.Len())
	}
	if r.Records() != 3 {
		t.Fatalf("records %d, want 3", r.Records())
	}
}

func TestLoadFileContext(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.trace")
	if err := os.WriteFile(path, []byte("HLLC\x01\x00\x00\x00\xff"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil || !strings.Contains(err.Error(), "bad.trace") {
		t.Fatalf("error lacks file context: %v", err)
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.trace")); err == nil {
		t.Fatal("missing file accepted")
	}
	good := filepath.Join(dir, "ok.trace")
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(workload.Access{Block: 7}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(good, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := LoadFile(good)
	if err != nil || rep.Len() != 1 {
		t.Fatalf("rep=%v err=%v", rep, err)
	}
}

func TestNegativeGapRejected(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.Write(workload.Access{Gap: -1}); err == nil {
		t.Fatal("negative gap accepted")
	}
}

func TestRecordAndLoad(t *testing.T) {
	app, err := workload.NewApp(workload.Profiles()["zeusmp06"], 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Record(app, 5000, &buf); err != nil {
		t.Fatal(err)
	}
	rep, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() != 5000 {
		t.Fatalf("loaded %d records", rep.Len())
	}
	// Replay matches a fresh generation with the same seed.
	app2, _ := workload.NewApp(workload.Profiles()["zeusmp06"], 0, 9)
	for i := 0; i < 5000; i++ {
		if rep.Next() != app2.Next() {
			t.Fatalf("replay diverged at record %d", i)
		}
	}
}

func TestReplayerLoops(t *testing.T) {
	app, _ := workload.NewApp(workload.Profiles()["xz17"], 0, 1)
	var buf bytes.Buffer
	if err := Record(app, 10, &buf); err != nil {
		t.Fatal(err)
	}
	rep, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	first := rep.Next()
	for i := 0; i < 9; i++ {
		rep.Next()
	}
	if rep.Next() != first {
		t.Fatal("loop did not restart at record 0")
	}
}

func TestReplayEndIsErrorNotPanic(t *testing.T) {
	rep := &Replayer{}
	if _, err := rep.ReadNext(); !errors.Is(err, ErrReplayEnd) {
		t.Fatalf("want ErrReplayEnd, got %v", err)
	}
	// The Program-interface form swallows the error into the sticky Err.
	if acc := rep.Next(); acc != (workload.Access{}) {
		t.Fatalf("exhausted Next returned %+v", acc)
	}
	if !errors.Is(rep.Err(), ErrReplayEnd) {
		t.Fatalf("sticky err = %v", rep.Err())
	}
}

func TestReplayerNonLoopExhaustion(t *testing.T) {
	app, _ := workload.NewApp(workload.Profiles()["xz17"], 0, 1)
	var buf bytes.Buffer
	if err := Record(app, 4, &buf); err != nil {
		t.Fatal(err)
	}
	rep, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep.Loop = false
	for i := 0; i < 4; i++ {
		if _, err := rep.ReadNext(); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	if _, err := rep.ReadNext(); !errors.Is(err, ErrReplayEnd) {
		t.Fatalf("want ErrReplayEnd, got %v", err)
	}
	if rep.Err() != nil {
		t.Fatalf("ReadNext must not poison Err: %v", rep.Err())
	}
}

func TestCompactness(t *testing.T) {
	app, _ := workload.NewApp(workload.Profiles()["libquantum06"], 0, 2)
	var buf bytes.Buffer
	const n = 20000
	if err := Record(app, n, &buf); err != nil {
		t.Fatal(err)
	}
	perRecord := float64(buf.Len()) / n
	if perRecord > 5 {
		t.Errorf("%.1f bytes/record; delta encoding ineffective", perRecord)
	}
}

// Property: arbitrary access sequences roundtrip exactly.
func TestTraceProperty(t *testing.T) {
	f := func(blocks []uint64, writes []bool, gaps []uint16) bool {
		n := len(blocks)
		if len(writes) < n {
			n = len(writes)
		}
		if len(gaps) < n {
			n = len(gaps)
		}
		in := make([]workload.Access, n)
		for i := 0; i < n; i++ {
			in[i] = workload.Access{Block: blocks[i], Write: writes[i], Gap: int(gaps[i])}
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, a := range in {
			if err := w.Write(a); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r := NewReader(&buf)
		for _, want := range in {
			got, err := r.Read()
			if err != nil || got != want {
				return false
			}
		}
		_, err := r.Read()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTraceWrite(b *testing.B) {
	app, _ := workload.NewApp(workload.Profiles()["mcf17"], 0, 1)
	w := NewWriter(io.Discard)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := w.Write(app.Next()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceRead(b *testing.B) {
	app, _ := workload.NewApp(workload.Profiles()["mcf17"], 0, 1)
	var buf bytes.Buffer
	if err := Record(app, 100000, &buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	r := NewReader(bytes.NewReader(data))
	for i := 0; i < b.N; i++ {
		if _, err := r.Read(); err == io.EOF {
			r = NewReader(bytes.NewReader(data))
		}
	}
}
