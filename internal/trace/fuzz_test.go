package trace

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/workload"
)

// FuzzTraceParse fuzzes the trace decoder with arbitrary byte streams: it
// must never panic, and must return either records or an error — truncated
// streams yield ErrUnexpectedEOF, garbage yields ErrBadMagic or a version
// error.
func FuzzTraceParse(f *testing.F) {
	// Seed with a valid 3-record trace and a few corruptions of it.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := uint64(0); i < 3; i++ {
		if err := w.Write(workload.Access{Block: i * 1000003, Write: i%2 == 0, Gap: int(i % 200)}); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add([]byte("HLLC\x01\x00\x00\x00"))
	f.Add([]byte("XXXX\x01\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 1000; i++ {
			_, err := r.Read()
			if err == io.EOF {
				return
			}
			if err != nil {
				return // any decoding error is acceptable; panics are not
			}
		}
	})
}
