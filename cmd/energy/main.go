// Command energy compares the LLC energy of the insertion policies on the
// same workload: per-policy dynamic (SRAM/NVM/tag) and leakage energy,
// total relative to the BH baseline, and energy per kilo-instruction.
// NVM-conservative policies avoid expensive NVM writes — the motivation
// behind TAP's reported 25% LLC energy reduction.
//
//	energy -mixes 1,4,6,8
//	energy -csv > energy.csv
//	energy -json | jq '.tables[0].rows'
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	cfg := core.DefaultConfig()
	mixesFlag := flag.String("mixes", "1,4", `comma-separated mix numbers (1-10) or "all"`)
	warmup := flag.Uint64("warmup", 2_000_000, "warm-up cycles")
	measure := flag.Uint64("measure", 8_000_000, "measured cycles")
	scale := flag.Float64("scale", cfg.Scale, "workload footprint scale")
	csvOut := flag.Bool("csv", false, "emit CSV")
	jsonOut := flag.Bool("json", false, "emit JSON")
	flag.Parse()

	cfg.Scale = *scale
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	mixes, err := cliutil.ParseMixes(*mixesFlag)
	if err != nil {
		fatal(err)
	}

	policies := []string{"BH", "BH_CP", "LHybrid", "TAP", "CA_RWR", "CP_SD", "CP_SD_Th"}
	rows, results, err := experiments.EnergyComparison(cfg, policies, mixes, *warmup, *measure)
	if err != nil {
		fatal(err)
	}

	rep := report.NewReport("LLC energy per policy (mJ per measurement window)")
	tab := report.New("energy breakdown",
		"policy", "sram_dyn", "nvm_dyn", "tag", "sram_leak", "nvm_leak", "total", "vs_bh", "uj_per_ki", "ipc")
	for _, r := range rows {
		b := r.Breakdown
		tab.AddRow(r.Policy, b.SRAMDynamic, b.NVMDynamic, b.TagDynamic,
			b.SRAMLeak, b.NVMLeak, b.Total(), r.RelativeToBH, r.PerKI*1e3, r.MeanIPC)
	}
	rep.AddTable(tab)
	cliutil.AddRunSummary(rep, results)
	if err := rep.Write(os.Stdout, report.FormatOf(*jsonOut, *csvOut)); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "energy:", err)
	os.Exit(1)
}
