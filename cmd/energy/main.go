// Command energy compares the LLC energy of the insertion policies on the
// same workload: per-policy dynamic (SRAM/NVM/tag) and leakage energy,
// total relative to the BH baseline, and energy per kilo-instruction.
// NVM-conservative policies avoid expensive NVM writes — the motivation
// behind TAP's reported 25% LLC energy reduction.
//
//	energy -mixes 1,4,6,8
//	energy -csv > energy.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	cfg := core.DefaultConfig()
	mixesFlag := flag.String("mixes", "1,4", `comma-separated mix numbers (1-10) or "all"`)
	warmup := flag.Uint64("warmup", 2_000_000, "warm-up cycles")
	measure := flag.Uint64("measure", 8_000_000, "measured cycles")
	scale := flag.Float64("scale", cfg.Scale, "workload footprint scale")
	csvOut := flag.Bool("csv", false, "emit CSV instead of a text table")
	flag.Parse()

	cfg.Scale = *scale
	mixes, err := cliutil.ParseMixes(*mixesFlag)
	if err != nil {
		fatal(err)
	}

	policies := []string{"BH", "BH_CP", "LHybrid", "TAP", "CA_RWR", "CP_SD", "CP_SD_Th"}
	rows, err := experiments.EnergyComparison(cfg, policies, mixes, *warmup, *measure)
	if err != nil {
		fatal(err)
	}

	tab := report.New("LLC energy per policy (mJ per measurement window)",
		"policy", "SRAM dyn", "NVM dyn", "tag", "SRAM leak", "NVM leak", "total", "vs BH", "uJ/KI", "IPC")
	for _, r := range rows {
		b := r.Breakdown
		tab.AddRow(r.Policy, b.SRAMDynamic, b.NVMDynamic, b.TagDynamic,
			b.SRAMLeak, b.NVMLeak, b.Total(), r.RelativeToBH, r.PerKI*1e3, r.MeanIPC)
	}
	if err := tab.Write(os.Stdout, *csvOut); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "energy:", err)
	os.Exit(1)
}
