// Command forecast reproduces the lifetime/performance evolution figures
// (Fig. 1, Fig. 10a/b/c, Fig. 11a/b/c): for each selected policy it runs
// the aging forecast procedure across the selected mixes and prints the
// lifetime to 50% NVM capacity plus the IPC trajectory (normalised to the
// 16-way SRAM upper bound), through the shared report sink.
//
// Examples:
//
//	forecast                         # Fig 10a curve set, quick mixes
//	forecast -mixes all              # full Table V workload
//	forecast -sram 3 -nvm 13         # Fig 10b
//	forecast -cv 0.25                # Fig 10c
//	forecast -l2kb 256               # Fig 11a
//	forecast -nvmlat 1.5             # Fig 11b
//	forecast -nvm 10                 # Fig 11c equal-storage point
//	forecast -json | jq '.tables[0]'
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/forecast"
	"repro/internal/report"
)

func main() {
	cfg := core.DefaultConfig()
	policies := flag.String("policies", "standard", `comma-separated curve labels, "standard" or "core"`)
	mixesFlag := flag.String("mixes", "1,4", fmt.Sprintf(`comma-separated mix numbers (1-%d) or "all"`, len(core.AllMixes())))
	sram := flag.Int("sram", cfg.SRAMWays, "SRAM ways")
	nvmWays := flag.Int("nvm", cfg.NVMWays, "NVM ways")
	cv := flag.Float64("cv", cfg.EnduranceCV, "endurance coefficient of variation")
	mean := flag.Float64("mean", cfg.EnduranceMean, "endurance mean writes")
	l2kb := flag.Int("l2kb", cfg.L2SizeKB, "L2 size in KB")
	nvmlat := flag.Float64("nvmlat", cfg.NVMLatencyFactor, "NVM data-array latency factor")
	scale := flag.Float64("scale", cfg.Scale, "workload footprint scale")
	sets := flag.Int("sets", cfg.LLCSets, "LLC sets")
	phase := flag.Uint64("phase", 10_000_000, "measured cycles per forecast phase")
	warm := flag.Uint64("warmup", 2_000_000, "warm-up cycles per phase")
	step := flag.Float64("step", 0.025, "capacity drop per prediction phase")
	rotate := flag.Bool("rotate", false, "enable Start-Gap-style inter-set wear leveling")
	coloring := flag.String("coloring", "", `set coloring: "xor:mask=N", "rotate:interval=N,step=N", "wear:interval=N,pairs=N" or "off"`)
	shards := flag.Int("shards", 1, "set shards; >1 forecasts on the parallel engine (bit-identical for any count)")
	analyticFast := flag.Bool("analytic", false, "use the analytic fast path: one calibration window per cell instead of the full forecast loop (-warmup sizes the warm-up, -phase the calibration window)")
	csvOut := flag.Bool("csv", false, "emit CSV")
	jsonOut := flag.Bool("json", false, "emit JSON")
	flag.Parse()

	cfg.SRAMWays, cfg.NVMWays = *sram, *nvmWays
	cfg.EnduranceCV = *cv
	cfg.EnduranceMean = *mean
	cfg.L2SizeKB = *l2kb
	cfg.NVMLatencyFactor = *nvmlat
	cfg.Scale = *scale
	cfg.LLCSets = *sets
	// Both mechanisms remap set indices; layering them would make the wear
	// attribution ambiguous, so the combination is rejected outright.
	if *rotate && *coloring != "" && *coloring != "off" {
		fatal(fmt.Errorf("-rotate and -coloring are mutually exclusive wear-leveling mechanisms"))
	}
	if err := cliutil.ApplyColoring(&cfg, *coloring); err != nil {
		fatal(err)
	}
	if err := cliutil.ApplyShards(&cfg, *shards, cliutil.ShardIncompat{
		When: *rotate,
		Flag: "-rotate",
		Why:  "moves blocks across shard boundaries; run inter-set rotation with -shards 1",
	}); err != nil {
		fatal(err)
	}

	specs, err := experiments.SelectForecastSpecs(*policies)
	if err != nil {
		fatal(err)
	}
	mixes, err := cliutil.ParseMixes(*mixesFlag)
	if err != nil {
		fatal(err)
	}

	fcfg := forecast.DefaultConfig()
	fcfg.PhaseCycles = *phase
	fcfg.WarmupCycles = *warm
	fcfg.CapacityStep = *step
	fcfg.InterSetRotation = *rotate

	var fs []experiments.PolicyForecast
	var results []cliutil.TaskResult
	if *analyticFast {
		fs, results, err = experiments.AnalyticComparison(cfg, specs, mixes, *warm, *phase)
	} else {
		fs, results, err = experiments.ForecastComparison(cfg, specs, mixes, fcfg)
	}
	if err != nil {
		fatal(err)
	}

	// Normalise to the SRAM16 upper bound if it was run.
	bound := 0.0
	if up, ok := experiments.FindSpec(fs, "SRAM16"); ok {
		bound = up.InitialIPC
	}

	// Exact lifetime × IPC Pareto frontier over the curve set (zero
	// margins — these are measured numbers, not estimates; the sweep
	// planner applies error margins to the same helper).
	pts := make([]experiments.ParetoPoint, len(fs))
	for i, pf := range fs {
		pts[i] = experiments.ParetoPoint{Lifetime: pf.MeanLifetimeMonths, IPC: pf.InitialIPC}
	}
	frontier := experiments.ParetoFrontier(pts)

	title := "forecast: lifetime and IPC evolution"
	if *analyticFast {
		title = "forecast (analytic fast path): lifetime and IPC estimates"
	}
	rep := report.NewReport(title)
	summary := report.New("lifetime to 50% NVM capacity",
		"policy", "ipc_t0", "norm_ipc", "lifetime_months", "censored_mixes", "pareto")
	for i, pf := range fs {
		life := "inf"
		if !math.IsInf(pf.MeanLifetimeMonths, 1) {
			life = fmt.Sprintf("%.1f", pf.MeanLifetimeMonths)
		}
		norm := "-"
		if bound > 0 {
			norm = fmt.Sprintf("%.4f", pf.InitialIPC/bound)
		}
		summary.AddRow(pf.Label, pf.InitialIPC, norm, life, pf.CensoredMixes, frontier[i])
	}
	rep.AddTable(summary)

	// IPC trajectory on a monthly grid up to the slowest-aging finite curve.
	maxMo := 0.0
	for _, pf := range fs {
		if !math.IsInf(pf.MeanLifetimeMonths, 1) && pf.MeanLifetimeMonths > maxMo {
			maxMo = pf.MeanLifetimeMonths
		}
	}
	if maxMo > 0 {
		const points = 8
		cols := []string{"policy"}
		for i := 0; i <= points; i++ {
			// %.3g keeps sub-month horizons distinguishable on
			// accelerated-endurance runs where %.1f would print all zeros.
			cols = append(cols, fmt.Sprintf("month_%.3g", maxMo*float64(i)/points))
		}
		traj := report.New("IPC vs time (normalised)", cols...)
		for _, pf := range fs {
			if pf.Label == "SRAM16" || pf.Label == "SRAM4" {
				continue
			}
			row := []interface{}{pf.Label}
			for i := 0; i <= points; i++ {
				t := maxMo * float64(i) / points * forecast.SecondsPerMonth
				v := pf.IPCAt(t)
				if bound > 0 {
					v /= bound
				}
				row = append(row, v)
			}
			traj.AddRow(row...)
		}
		rep.AddTable(traj)
	}
	cliutil.AddRunSummary(rep, results)
	if err := rep.Write(os.Stdout, report.FormatOf(*jsonOut, *csvOut)); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "forecast:", err)
	os.Exit(1)
}
