// Command appstudy runs every SPEC application model homogeneously (four
// copies, one per core) under a chosen insertion policy, exposing the
// per-benchmark behaviour behind §IV-A: incompressible applications (xz17,
// milc06) send nothing to the NVM part under compression-aware policies,
// fully compressible ones (GemsFDTD06, zeusmp06) send almost everything.
//
//	appstudy -policy CA -cpth 37     # reproduce the §IV-A pathology
//	appstudy -policy CP_SD           # show CP_SD balancing it
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	cfg := core.QuickConfig()
	policyName := flag.String("policy", cfg.PolicyName, "insertion policy")
	cpth := flag.Int("cpth", cfg.CPth, "fixed threshold for CA/CA_RWR")
	warmup := flag.Uint64("warmup", 1_000_000, "warm-up cycles")
	measure := flag.Uint64("measure", 4_000_000, "measured cycles")
	csvOut := flag.Bool("csv", false, "emit CSV")
	flag.Parse()

	cfg.CPth = *cpth
	probe := cfg
	probe.PolicyName = *policyName
	if err := probe.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "appstudy:", err)
		os.Exit(1)
	}
	rows, results, err := experiments.PerAppStudy(cfg, *policyName, *warmup, *measure)
	if err != nil {
		fmt.Fprintln(os.Stderr, "appstudy:", err)
		os.Exit(1)
	}

	tab := report.New(fmt.Sprintf("per-application behaviour under %s", *policyName),
		"app", "hit rate", "IPC", "NVM share", "compressible", "NVM bytes")
	for _, r := range rows {
		tab.AddRow(r.App, r.HitRate, r.MeanIPC, r.NVMShare, r.CompressibleFr, r.NVMBytes)
	}
	if err := tab.Write(os.Stdout, *csvOut); err != nil {
		fmt.Fprintln(os.Stderr, "appstudy:", err)
		os.Exit(1)
	}
	if fails := cliutil.Failures(results); len(fails) > 0 {
		fmt.Fprintf(os.Stderr, "appstudy: %d of %d applications failed:\n", len(fails), len(results))
		for _, f := range fails {
			fmt.Fprintf(os.Stderr, "  %s [%s]: %v\n", f.Name, f.Kind(), f.Err)
		}
		os.Exit(1)
	}
}
