package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/report"
)

func quickOpts() studyOptions {
	return studyOptions{
		Policy:     "CP_SD",
		Mix:        0,
		Seed:       11,
		Target:     0.5,
		Step:       0.125,
		CheckEvery: 5_000,
		Quick:      true,
		Warmup:     150_000,
		Measure:    150_000,
	}
}

// TestStudyDeterminism: two same-seed studies must emit bit-identical
// reports — the acceptance bar for replayable fault campaigns.
func TestStudyDeterminism(t *testing.T) {
	render := func() string {
		rep, violations, err := runStudy(quickOpts())
		if err != nil {
			t.Fatal(err)
		}
		if violations != 0 {
			t.Fatalf("%d invariant violations during degradation", violations)
		}
		var buf bytes.Buffer
		if err := rep.Write(&buf, report.JSON); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("same-seed reports differ:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

func TestStudyReachesTarget(t *testing.T) {
	rep, violations, err := runStudy(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if violations != 0 {
		t.Fatalf("%d violations", violations)
	}
	var finalCap float64
	var steps int
	for _, f := range rep.Fields() {
		switch f.Key {
		case "final_capacity":
			finalCap = f.Value.(float64)
		case "campaign_steps":
			steps = f.Value.(int)
		}
	}
	if finalCap > 0.5 {
		t.Fatalf("final capacity %.3f, want <= 0.5", finalCap)
	}
	if steps < 3 {
		t.Fatalf("only %d campaign steps", steps)
	}
	// Degradation table must have the baseline plus one row per step.
	tabs := rep.Tables()
	if len(tabs) == 0 || tabs[0].Rows() != steps+1 {
		t.Fatalf("degradation table has %d rows, want %d", tabs[0].Rows(), steps+1)
	}
}

func TestStudyRejectsBadConfig(t *testing.T) {
	opt := quickOpts()
	opt.Policy = "NOPE"
	if _, _, err := runStudy(opt); err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Fatalf("bad policy not rejected: %v", err)
	}
	opt = quickOpts()
	opt.Step = 0
	if _, _, err := runStudy(opt); err == nil {
		t.Fatal("zero step accepted")
	}
	opt = quickOpts()
	opt.SpecPath = "does-not-exist.json"
	if _, _, err := runStudy(opt); err == nil {
		t.Fatal("missing spec accepted")
	}
}
