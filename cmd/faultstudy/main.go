// Command faultstudy drives a deterministic fault-injection campaign
// against a running system and reports the graceful-degradation curve:
// per campaign step, the surviving effective NVM capacity, live frames,
// and the hit rate / IPC measured after the faults land. The full strict
// invariant suite runs after every step; any violation is reported and
// fails the run. Same seed, same flags → bit-identical report.
//
//	faultstudy -quick                      # fast degradation curve to 50%
//	faultstudy -policy CP_SD -mix 4        # full-size study
//	faultstudy -spec campaign.json -json   # replay a declarative campaign
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/check"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/report"
)

type studyOptions struct {
	Policy     string
	Mix        int // 0-based
	Seed       uint64
	SpecPath   string  // campaign spec JSON; empty = capacity ramp
	Target     float64 // ramp: final effective capacity fraction
	Step       float64 // ramp: capacity drop per step
	CheckEvery uint64  // continuous checker interval (0 = step-only checks)
	Coloring   string  // set-coloring spec ("" = off)
	Quick      bool
	Warmup     uint64
	Measure    uint64
}

func main() {
	nMixes := len(core.AllMixes())
	policy := flag.String("policy", "CP_SD", "insertion policy")
	mix := flag.Int("mix", 1, fmt.Sprintf("mix number (1-%d)", nMixes))
	seed := flag.Uint64("seed", 1, "campaign and workload seed")
	spec := flag.String("spec", "", "campaign spec JSON file (default: capacity ramp)")
	target := flag.Float64("target", 0.5, "ramp target effective capacity fraction")
	step := flag.Float64("step", 0.1, "ramp capacity drop per step")
	checkEvery := flag.Uint64("checkevery", 10_000, "run the invariant checker every N LLC accesses (0 disables)")
	coloring := flag.String("coloring", "", `set coloring: "xor:mask=N", "rotate:interval=N,step=N", "wear:interval=N,pairs=N" or "off"`)
	quick := flag.Bool("quick", false, "small configuration, short windows")
	warmup := flag.Uint64("warmup", 0, "warm-up cycles (0 = preset default)")
	measure := flag.Uint64("measure", 0, "measured cycles per step (0 = preset default)")
	csvOut := flag.Bool("csv", false, "emit CSV")
	jsonOut := flag.Bool("json", false, "emit JSON")
	flag.Parse()

	if *mix < 1 || *mix > nMixes {
		fatal(fmt.Errorf("mix %d outside 1-%d", *mix, nMixes))
	}
	opt := studyOptions{
		Policy:     *policy,
		Mix:        *mix - 1,
		Seed:       *seed,
		SpecPath:   *spec,
		Target:     *target,
		Step:       *step,
		CheckEvery: *checkEvery,
		Coloring:   *coloring,
		Quick:      *quick,
		Warmup:     *warmup,
		Measure:    *measure,
	}
	rep, violations, err := runStudy(opt)
	if err != nil {
		fatal(err)
	}
	if err := rep.Write(os.Stdout, report.FormatOf(*jsonOut, *csvOut)); err != nil {
		fatal(err)
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "faultstudy: %d invariant violations\n", violations)
		os.Exit(1)
	}
}

// runStudy executes the campaign and returns the report plus the total
// number of invariant violations observed (step checks and the
// continuous checker combined).
func runStudy(opt studyOptions) (*report.Report, int, error) {
	cfg := core.DefaultConfig()
	warmup, measure := uint64(2_000_000), uint64(2_000_000)
	if opt.Quick {
		cfg = core.QuickConfig()
		warmup, measure = 300_000, 300_000
	}
	if opt.Warmup > 0 {
		warmup = opt.Warmup
	}
	if opt.Measure > 0 {
		measure = opt.Measure
	}
	cfg.PolicyName = opt.Policy
	cfg.MixID = opt.Mix
	cfg.Seed = opt.Seed
	cfg.CheckEvery = opt.CheckEvery
	// ApplyColoring validates the whole config (coloring included).
	if err := cliutil.ApplyColoring(&cfg, opt.Coloring); err != nil {
		return nil, 0, err
	}
	sys, err := cfg.Build()
	if err != nil {
		return nil, 0, err
	}

	var spec faultinject.Spec
	if opt.SpecPath != "" {
		spec, err = faultinject.LoadSpec(opt.SpecPath)
		if err != nil {
			return nil, 0, err
		}
	} else {
		if opt.Step <= 0 || opt.Target <= 0 || opt.Target >= 1 {
			return nil, 0, fmt.Errorf("faultstudy: bad ramp step=%v target=%v", opt.Step, opt.Target)
		}
		spec = faultinject.CapacityRamp(opt.Seed, 1-opt.Step, opt.Target, opt.Step)
	}
	camp, err := faultinject.NewCampaign(sys.LLC().Array(), spec)
	if err != nil {
		return nil, 0, err
	}

	rep := report.NewReport(fmt.Sprintf("fault-injection study: %s, mix %d", opt.Policy, opt.Mix+1))
	rep.AddField("policy", opt.Policy)
	rep.AddField("mix", opt.Mix+1)
	rep.AddField("seed", opt.Seed)
	rep.AddField("campaign_steps", len(spec.Steps))

	tab := report.New("degradation curve",
		"step", "kind", "capacity", "live_frames", "bytes_disabled",
		"frames_killed", "hit_rate", "mean_ipc", "violations")

	sys.Run(warmup)
	llc := sys.LLC()
	base := sys.Run(measure)
	tab.AddRow(0, "baseline", llc.EffectiveCapacityFraction(), llc.Array().LiveFrames(),
		0, 0, base.LLC.HitRate(), base.MeanIPC, 0)

	viol := report.New("invariant violations", "step", "invariant", "detail")
	totalViolations := 0
	for {
		res, ok := camp.Next()
		if !ok {
			break
		}
		// Faults can strand resident blocks in frames that no longer fit
		// them; the hardware would invalidate on the next touch, the
		// simulator does it eagerly so the strict suite applies.
		llc.InvalidateUnfit()
		vs := append(check.LLC(llc, true), check.Array(llc.Array())...)
		for _, v := range vs {
			viol.AddRow(res.Index+1, v.Invariant, v.Detail)
		}
		totalViolations += len(vs)
		r := sys.Run(measure)
		tab.AddRow(res.Index+1, string(res.Kind), res.Capacity, res.LiveFrames,
			res.BytesDisabled, res.FramesKilled, r.LLC.HitRate(), r.MeanIPC, len(vs))
	}
	rep.AddTable(tab)
	if totalViolations > 0 {
		rep.AddTable(viol)
	}
	if chk, ok := sys.AccessProbe().(*check.Checker); ok {
		chk.ReportInto(rep)
		totalViolations += len(chk.Violations()) + chk.Dropped()
	}
	rep.AddField("final_capacity", llc.EffectiveCapacityFraction())
	rep.AddField("total_violations", totalViolations)
	return rep, totalViolations, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "faultstudy:", err)
	os.Exit(1)
}
