// Command tournament contests the policy league: every selected policy —
// the paper's set-dueling baseline, the RRIP-family substrate and the
// N-way tournament meta-policies — runs the aging forecast across the
// selected mixes, and the standings are ranked on the lifetime axis with
// the young-cache IPC axis alongside, through the shared report sink.
// A user-defined bracket (the same JSON object `simd` jobs carry in the
// config's "tournament" field) can be substituted for the TOURNAMENT
// entry's default bracket.
//
// Examples:
//
//	tournament                         # default league, quick mixes
//	tournament -mixes all              # full Table V workload
//	tournament -policies SRRIP,BRRIP,DRRIP,CP_SD
//	tournament -bracket bracket.json   # custom TOURNAMENT bracket
//	tournament -quick                  # CI smoke preset (small, fast)
//	tournament -json | jq '.tables[0]'
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/forecast"
	"repro/internal/report"
)

func main() {
	cfg := core.DefaultConfig()
	policiesFlag := flag.String("policies", "league", `comma-separated policy names, or "league" for the default standings`)
	mixesFlag := flag.String("mixes", "1,4", `comma-separated mix numbers (1-10) or "all"`)
	bracketPath := flag.String("bracket", "", "JSON file with a tournament bracket for the TOURNAMENT entry")
	sets := flag.Int("sets", cfg.LLCSets, "LLC sets")
	scale := flag.Float64("scale", cfg.Scale, "workload footprint scale")
	mean := flag.Float64("mean", cfg.EnduranceMean, "endurance mean writes")
	cv := flag.Float64("cv", cfg.EnduranceCV, "endurance coefficient of variation")
	cpth := flag.Int("cpth", cfg.CPth, "fixed compression threshold for non-dueling policies")
	phase := flag.Uint64("phase", 10_000_000, "measured cycles per forecast phase")
	warm := flag.Uint64("warmup", 2_000_000, "warm-up cycles per phase")
	step := flag.Float64("step", 0.05, "capacity drop per prediction phase")
	shards := flag.Int("shards", 1, "set shards; >1 runs each cell on the parallel engine (bit-identical for any count)")
	quick := flag.Bool("quick", false, "CI smoke preset: small cache, short phases, accelerated endurance, mix 1 only")
	csvOut := flag.Bool("csv", false, "emit CSV")
	jsonOut := flag.Bool("json", false, "emit JSON")
	flag.Parse()

	cfg.LLCSets = *sets
	cfg.Scale = *scale
	cfg.EnduranceMean = *mean
	cfg.EnduranceCV = *cv
	cfg.CPth = *cpth

	fcfg := forecast.DefaultConfig()
	fcfg.PhaseCycles = *phase
	fcfg.WarmupCycles = *warm
	fcfg.CapacityStep = *step

	mixArg := *mixesFlag
	if *quick {
		q := core.QuickConfig()
		cfg.LLCSets = q.LLCSets
		cfg.Scale = q.Scale
		cfg.L2SizeKB = q.L2SizeKB
		cfg.EpochCycles = q.EpochCycles
		cfg.EnduranceMean = 60_000
		cfg.EnduranceCV = 0.3
		fcfg.PhaseCycles = 300_000
		fcfg.WarmupCycles = 100_000
		fcfg.CapacityStep = 0.1
		fcfg.MaxPhases = 8
		if mixArg == "1,4" {
			mixArg = "1"
		}
	}

	if *bracketPath != "" {
		tc, err := loadBracket(*bracketPath)
		if err != nil {
			fatal(err)
		}
		cfg.Tournament = tc
	}
	if err := cliutil.ApplyShards(&cfg, *shards); err != nil {
		fatal(err)
	}

	names := experiments.DefaultLeague()
	if *policiesFlag != "league" {
		names = nil
		for _, tok := range strings.Split(*policiesFlag, ",") {
			if tok = strings.TrimSpace(tok); tok != "" {
				names = append(names, tok)
			}
		}
	}
	specs, err := experiments.LeagueSpecs(names)
	if err != nil {
		fatal(err)
	}
	mixes, err := cliutil.ParseMixes(mixArg)
	if err != nil {
		fatal(err)
	}
	// Every league entry must validate before any cell runs, so a bad
	// bracket or threshold fails in milliseconds, not mid-league.
	for _, name := range names {
		c := cfg
		c.PolicyName = name
		if err := c.Validate(); err != nil {
			fatal(err)
		}
	}

	fs, results, err := experiments.ForecastComparison(cfg, specs, mixes, fcfg)
	if err != nil {
		fatal(err)
	}
	rows := experiments.RankLeague(fs)

	rep := report.NewReport("tournament: policy league standings")
	standings := report.New("standings (lifetime to 50% NVM capacity, young-cache IPC)",
		"rank", "policy", "lifetime_months", "censored_mixes", "ipc_t0", "norm_ipc")
	for _, r := range rows {
		standings.AddRow(r.Rank, r.Policy, lifeStr(r.MeanLifetimeMonths), r.CensoredMixes,
			fmt.Sprintf("%.4f", r.InitialIPC), fmt.Sprintf("%.4f", r.NormIPC))
	}
	rep.AddTable(standings)

	// Per-mix league matrices: the lifetime and IPC axes cell by cell.
	lifeCols := []string{"policy"}
	for _, m := range mixes {
		lifeCols = append(lifeCols, fmt.Sprintf("mix_%d", m+1))
	}
	lifeTab := report.New("lifetime months by mix", lifeCols...)
	ipcTab := report.New("young-cache IPC by mix", lifeCols...)
	for _, pf := range fs {
		lifeRow := []interface{}{pf.Label}
		ipcRow := []interface{}{pf.Label}
		for mi := range mixes {
			if mi >= len(pf.PerMix) {
				lifeRow = append(lifeRow, "-")
				ipcRow = append(ipcRow, "-")
				continue
			}
			res := pf.PerMix[mi]
			lifeRow = append(lifeRow, lifeStr(res.LifetimeMonths()))
			ipc := 0.0
			if len(res.Points) > 0 {
				ipc = res.Points[0].MeanIPC
			}
			ipcRow = append(ipcRow, fmt.Sprintf("%.4f", ipc))
		}
		lifeTab.AddRow(lifeRow...)
		ipcTab.AddRow(ipcRow...)
	}
	rep.AddTable(lifeTab)
	rep.AddTable(ipcTab)

	// Document the bracket the TOURNAMENT entry contested with.
	for _, name := range names {
		if name != "TOURNAMENT" {
			continue
		}
		tc := cfg.Tournament
		if tc == nil {
			tc = core.DefaultTournament()
		}
		brk := report.New("TOURNAMENT bracket", "slot", "policy", "cpth")
		for i, cand := range tc.Candidates {
			cpthVal := cand.CPth
			if cpthVal == 0 {
				cpthVal = cfg.CPth
			}
			brk.AddRow(i, cand.Policy, cpthVal)
		}
		rep.AddTable(brk)
		break
	}

	cliutil.AddRunSummary(rep, results)
	if err := rep.Write(os.Stdout, report.FormatOf(*jsonOut, *csvOut)); err != nil {
		fatal(err)
	}
}

func lifeStr(months float64) string {
	if math.IsInf(months, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.4g", months)
}

// loadBracket strict-decodes a tournament bracket document, the same
// object a simd job config carries in its "tournament" field.
func loadBracket(path string) (*core.TournamentConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var tc core.TournamentConfig
	if err := dec.Decode(&tc); err != nil {
		return nil, fmt.Errorf("bracket %s: %w", path, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("bracket %s: trailing data after JSON document", path)
	}
	return &tc, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tournament:", err)
	os.Exit(1)
}
