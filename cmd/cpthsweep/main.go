// Command cpthsweep reproduces the compression-threshold studies:
//
//	(default)    Fig. 6 and Fig. 7 — LLC hit rate and NVM bytes written
//	             versus CPth for CA and CA_RWR, normalised to BH, plus
//	             the adaptive CP_SD reference line.
//	-fig8        Fig. 8 — fraction of epochs each CPth value is optimal,
//	             across NVM capacities (8a) and across mixes (8b).
//	-epochsweep  §IV-C — set-dueling epoch-size sensitivity.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	cfg := core.DefaultConfig()
	mixesFlag := flag.String("mixes", "1,4", `comma-separated mix numbers (1-10) or "all"`)
	warmup := flag.Uint64("warmup", 2_000_000, "warm-up cycles")
	measure := flag.Uint64("measure", 8_000_000, "measured cycles")
	scale := flag.Float64("scale", cfg.Scale, "workload footprint scale")
	sets := flag.Int("sets", cfg.LLCSets, "LLC sets")
	fig8 := flag.Bool("fig8", false, "produce the Fig. 8 optimal-CPth distributions")
	epochSweep := flag.Bool("epochsweep", false, "produce the epoch-size sensitivity table")
	flag.Parse()

	cfg.Scale = *scale
	cfg.LLCSets = *sets
	mixes, err := cliutil.ParseMixes(*mixesFlag)
	if err != nil {
		fatal(err)
	}

	switch {
	case *fig8:
		runFig8(cfg, mixes)
	case *epochSweep:
		runEpochSweep(cfg, mixes, *warmup, *measure)
	default:
		runFig67(cfg, mixes, *warmup, *measure)
	}
}

func runFig67(cfg core.Config, mixes []int, warmup, measure uint64) {
	sweep, err := experiments.Fig6And7CPthSweep(cfg, mixes, warmup, measure)
	if err != nil {
		fatal(err)
	}
	fmt.Println("Fig. 6 / Fig. 7 — normalised to BH")
	fmt.Printf("%5s %12s %12s %12s %12s\n", "CPth", "CA hits", "CA_RWR hits", "CA bytes", "CA_RWR bytes")
	for _, r := range sweep.Rows {
		fmt.Printf("%5d %12.4f %12.4f %12.4f %12.4f\n", r.CPth,
			sweep.NormalizedHitRate(r.CAHits),
			sweep.NormalizedHitRate(r.CARWRHits),
			sweep.NormalizedBytes(r.CANVMBytes),
			sweep.NormalizedBytes(r.CARWRNVMBytes))
	}
	fmt.Printf("%5s %12.4f %12s %12.4f\n", "CP_SD",
		sweep.NormalizedHitRate(sweep.CPSDHits), "-", sweep.NormalizedBytes(sweep.CPSDBytes))
}

func runFig8(cfg core.Config, mixes []int) {
	res, err := experiments.Fig8OptimalCPth(cfg, mixes, []float64{1.0, 0.9, 0.8, 0.7, 0.6, 0.5}, 3, 16)
	if err != nil {
		fatal(err)
	}
	fmt.Println("Fig. 8a — % epochs each CPth is optimal, by NVM capacity")
	fmt.Printf("%9s", "capacity")
	for _, c := range res.Candidates {
		fmt.Printf(" %6d", c)
	}
	fmt.Println()
	for i, capacity := range res.Capacities {
		fmt.Printf("%8.0f%%", capacity*100)
		for _, f := range res.ByCapacity[i] {
			fmt.Printf(" %5.1f%%", f*100)
		}
		fmt.Println()
	}
	fmt.Println("\nFig. 8b — per mix at 100% capacity")
	for i, m := range res.Mixes {
		fmt.Printf("mix %-5d", m+1)
		for _, f := range res.ByMix[i] {
			fmt.Printf(" %5.1f%%", f*100)
		}
		fmt.Println()
	}
}

func runEpochSweep(cfg core.Config, mixes []int, warmup, measure uint64) {
	sizes := []uint64{500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000}
	rows, err := experiments.EpochSizeSweep(cfg, mixes, sizes, warmup, measure)
	if err != nil {
		fatal(err)
	}
	fmt.Println("Set-dueling epoch-size sensitivity (§IV-C; paper picks 2M)")
	fmt.Printf("%12s %10s\n", "epoch", "hit rate")
	for _, r := range rows {
		fmt.Printf("%12d %10.4f\n", r.EpochCycles, r.HitRate)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cpthsweep:", err)
	os.Exit(1)
}
