// Command cpthsweep reproduces the compression-threshold studies:
//
//	(default)    Fig. 6 and Fig. 7 — LLC hit rate and NVM bytes written
//	             versus CPth for CA and CA_RWR, normalised to BH, plus
//	             the adaptive CP_SD reference line.
//	-fig8        Fig. 8 — fraction of epochs each CPth value is optimal,
//	             across NVM capacities (8a) and across mixes (8b).
//	-epochsweep  §IV-C — set-dueling epoch-size sensitivity.
//
// All modes render through the shared report sink; -csv and -json select
// the machine-readable encodings.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	cfg := core.DefaultConfig()
	mixesFlag := flag.String("mixes", "1,4", `comma-separated mix numbers (1-10) or "all"`)
	warmup := flag.Uint64("warmup", 2_000_000, "warm-up cycles")
	measure := flag.Uint64("measure", 8_000_000, "measured cycles")
	scale := flag.Float64("scale", cfg.Scale, "workload footprint scale")
	sets := flag.Int("sets", cfg.LLCSets, "LLC sets")
	fig8 := flag.Bool("fig8", false, "produce the Fig. 8 optimal-CPth distributions")
	epochSweep := flag.Bool("epochsweep", false, "produce the epoch-size sensitivity table")
	csvOut := flag.Bool("csv", false, "emit CSV")
	jsonOut := flag.Bool("json", false, "emit JSON")
	flag.Parse()

	cfg.Scale = *scale
	cfg.LLCSets = *sets
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	mixes, err := cliutil.ParseMixes(*mixesFlag)
	if err != nil {
		fatal(err)
	}

	var rep *report.Report
	switch {
	case *fig8:
		rep, err = runFig8(cfg, mixes)
	case *epochSweep:
		rep, err = runEpochSweep(cfg, mixes, *warmup, *measure)
	default:
		rep, err = runFig67(cfg, mixes, *warmup, *measure)
	}
	if err != nil {
		fatal(err)
	}
	if err := rep.Write(os.Stdout, report.FormatOf(*jsonOut, *csvOut)); err != nil {
		fatal(err)
	}
}

func runFig67(cfg core.Config, mixes []int, warmup, measure uint64) (*report.Report, error) {
	sweep, results, err := experiments.Fig6And7CPthSweep(cfg, mixes, warmup, measure)
	if err != nil {
		return nil, err
	}
	rep := report.NewReport("Fig. 6 / Fig. 7 — normalised to BH")
	rep.AddField("cpsd_hits_vs_bh", sweep.NormalizedHitRate(sweep.CPSDHits))
	rep.AddField("cpsd_bytes_vs_bh", sweep.NormalizedBytes(sweep.CPSDBytes))
	tab := report.New("CPth sweep (CA and CA_RWR vs BH)",
		"cpth", "ca_hits", "ca_rwr_hits", "ca_bytes", "ca_rwr_bytes")
	for _, r := range sweep.Rows {
		tab.AddRow(r.CPth,
			sweep.NormalizedHitRate(r.CAHits),
			sweep.NormalizedHitRate(r.CARWRHits),
			sweep.NormalizedBytes(r.CANVMBytes),
			sweep.NormalizedBytes(r.CARWRNVMBytes))
	}
	rep.AddTable(tab)
	cliutil.AddRunSummary(rep, results)
	return rep, nil
}

func runFig8(cfg core.Config, mixes []int) (*report.Report, error) {
	res, err := experiments.Fig8OptimalCPth(cfg, mixes, []float64{1.0, 0.9, 0.8, 0.7, 0.6, 0.5}, 3, 16)
	if err != nil {
		return nil, err
	}
	rep := report.NewReport("Fig. 8 — fraction of epochs each CPth is optimal")
	cols := make([]string, 0, len(res.Candidates)+1)
	cols = append(cols, "capacity")
	for _, c := range res.Candidates {
		cols = append(cols, fmt.Sprintf("cpth_%d", c))
	}
	byCap := report.New("Fig. 8a — by NVM capacity", cols...)
	for i, capacity := range res.Capacities {
		row := []interface{}{fmt.Sprintf("%.0f%%", capacity*100)}
		for _, f := range res.ByCapacity[i] {
			row = append(row, f)
		}
		byCap.AddRow(row...)
	}
	rep.AddTable(byCap)

	cols[0] = "mix"
	byMix := report.New("Fig. 8b — per mix at 100% capacity", cols...)
	for i, m := range res.Mixes {
		row := []interface{}{m + 1}
		for _, f := range res.ByMix[i] {
			row = append(row, f)
		}
		byMix.AddRow(row...)
	}
	rep.AddTable(byMix)
	return rep, nil
}

func runEpochSweep(cfg core.Config, mixes []int, warmup, measure uint64) (*report.Report, error) {
	sizes := []uint64{500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000}
	rows, err := experiments.EpochSizeSweep(cfg, mixes, sizes, warmup, measure)
	if err != nil {
		return nil, err
	}
	rep := report.NewReport("Set-dueling epoch-size sensitivity (§IV-C; paper picks 2M)")
	tab := report.New("hit rate by epoch size", "epoch_cycles", "hit_rate")
	for _, r := range rows {
		tab.AddRow(r.EpochCycles, r.HitRate)
	}
	rep.AddTable(tab)
	return rep, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cpthsweep:", err)
	os.Exit(1)
}
