// Command tracegen records the memory-access trace of a synthetic SPEC
// application (or a whole Table V mix) to the compact binary format of
// internal/trace, enabling HyCSim-style trace-driven studies where every
// policy configuration replays the identical stimulus.
//
// Examples:
//
//	tracegen -app zeusmp06 -n 1000000 -o zeusmp.trc
//	tracegen -app zeusmp06 -o zeusmp.trc.gz    # gzip-compressed output
//	tracegen -mix 4 -n 500000 -o mix4          # writes mix4.core{0..3}.trc
//	tracegen -mix 4 -gzip -o mix4              # writes mix4.core{0..3}.trc.gz
//
// Output ending in ".gz" is gzip-compressed; every trace consumer
// (hybridsim -trace) detects compression by content, so compressed and
// plain traces are interchangeable.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/cliutil"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	appName := flag.String("app", "", "application profile to trace (see -list)")
	mix := flag.Int("mix", 0, "Table V mix to trace (1-10); one file per core")
	n := flag.Int("n", 1_000_000, "number of accesses to record")
	out := flag.String("o", "trace.trc", "output file (or prefix for -mix)")
	gzipOut := flag.Bool("gzip", false, "gzip-compress -mix output (appends .gz to each per-core file)")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	scale := flag.Float64("scale", 0.25, "footprint scale")
	list := flag.Bool("list", false, "list available application profiles")
	flag.Parse()

	if *list {
		names := make([]string, 0)
		for name := range workload.Profiles() {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Println(name)
		}
		return
	}

	switch {
	case *appName != "":
		prof, ok := workload.Profiles()[*appName]
		if !ok {
			fatal(fmt.Errorf("unknown application %q (use -list)", *appName))
		}
		app, err := workload.NewApp(prof.Scale(*scale), workload.AppSpacing, *seed)
		if err != nil {
			fatal(err)
		}
		if err := writeTrace(app, *n, *out); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d accesses of %s to %s\n", *n, *appName, *out)
	case *mix >= 1 && *mix <= 10:
		apps, err := workload.NewMix(*mix-1, *seed, *scale)
		if err != nil {
			fatal(err)
		}
		for i, app := range apps {
			name := fmt.Sprintf("%s.core%d.trc", *out, i)
			if *gzipOut {
				name += ".gz"
			}
			if err := writeTrace(app, *n, name); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %d accesses of %s to %s\n", *n, app.Profile().Name, name)
		}
	default:
		fatal(fmt.Errorf("need -app NAME or -mix 1..10"))
	}
}

func writeTrace(app *workload.App, n int, path string) error {
	f, err := cliutil.CreateTrace(path)
	if err != nil {
		return err
	}
	if err := trace.Record(app, n, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
