// Command thsweep reproduces Fig. 9: the CP_SD_Th rule's trade-off between
// LLC hits and NVM bytes written, sweeping Th at fixed Tw across NVM
// capacity operating points, all normalised to BH at 100% capacity.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	cfg := core.DefaultConfig()
	mixesFlag := flag.String("mixes", "1,4", `comma-separated mix numbers (1-10) or "all"`)
	warmup := flag.Uint64("warmup", 2_000_000, "warm-up cycles")
	measure := flag.Uint64("measure", 8_000_000, "measured cycles")
	scale := flag.Float64("scale", cfg.Scale, "workload footprint scale")
	tw := flag.Float64("tw", cfg.Tw, "Tw: minimum write reduction percentage")
	csvOut := flag.Bool("csv", false, "emit CSV")
	jsonOut := flag.Bool("json", false, "emit JSON")
	flag.Parse()

	cfg.Scale = *scale
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	mixes, err := cliutil.ParseMixes(*mixesFlag)
	if err != nil {
		fatal(err)
	}

	ths := []float64{0, 2, 4, 6, 8}
	caps := []float64{1.0, 0.9, 0.8}
	pts, results, err := experiments.Fig9ThTradeoff(cfg, mixes, ths, caps, *tw, *warmup, *measure)
	if err != nil {
		fatal(err)
	}
	rep := report.NewReport(fmt.Sprintf("Fig. 9 — CP_SD_Th trade-off (Tw = %g%%), normalised to BH @ 100%%", *tw))
	tab := report.New("hits vs NVM bytes", "capacity", "th", "hits", "nvm_bytes")
	for _, p := range pts {
		tab.AddRow(fmt.Sprintf("%.0f%%", p.Capacity*100), fmt.Sprintf("%g", p.Th), p.Hits, p.NVMBytes)
	}
	rep.AddTable(tab)
	cliutil.AddRunSummary(rep, results)
	if err := rep.Write(os.Stdout, report.FormatOf(*jsonOut, *csvOut)); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "thsweep:", err)
	os.Exit(1)
}
