// Command thsweep reproduces Fig. 9: the CP_SD_Th rule's trade-off between
// LLC hits and NVM bytes written, sweeping Th at fixed Tw across NVM
// capacity operating points, all normalised to BH at 100% capacity.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	cfg := core.DefaultConfig()
	mixesFlag := flag.String("mixes", "1,4", `comma-separated mix numbers (1-10) or "all"`)
	warmup := flag.Uint64("warmup", 2_000_000, "warm-up cycles")
	measure := flag.Uint64("measure", 8_000_000, "measured cycles")
	scale := flag.Float64("scale", cfg.Scale, "workload footprint scale")
	tw := flag.Float64("tw", 5, "Tw: minimum write reduction percentage")
	flag.Parse()

	cfg.Scale = *scale
	mixes, err := cliutil.ParseMixes(*mixesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "thsweep:", err)
		os.Exit(1)
	}

	ths := []float64{0, 2, 4, 6, 8}
	caps := []float64{1.0, 0.9, 0.8}
	pts, err := experiments.Fig9ThTradeoff(cfg, mixes, ths, caps, *tw, *warmup, *measure)
	if err != nil {
		fmt.Fprintln(os.Stderr, "thsweep:", err)
		os.Exit(1)
	}
	fmt.Printf("Fig. 9 — CP_SD_Th trade-off (Tw = %g%%), normalised to BH @ 100%%\n", *tw)
	fmt.Printf("%9s %5s %10s %10s\n", "capacity", "Th", "hits", "NVM bytes")
	for _, p := range pts {
		fmt.Printf("%8.0f%% %5.0f %10.4f %10.4f\n", p.Capacity*100, p.Th, p.Hits, p.NVMBytes)
	}
}
