// Command bench measures the simulator's hot-path cost — ns, heap
// allocations and allocated bytes per LLC access — across a mix×policy
// cross, and writes the result as BENCH_hotpath.json through the shared
// report sink. It is the performance baseline the alloc-regression tests
// pin: run it before and after a change and compare the JSON (or pipe
// two text runs through benchstat).
//
//	bench -quick                               # CI baseline, writes BENCH_hotpath.json
//	bench -quick -mixes 1,2 -policies BH,CP_SD # a smaller cross
//	bench -cpuprofile cpu.out -memprofile mem.out -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	quick := flag.Bool("quick", false, "small configuration, short windows")
	mixes := flag.String("mixes", "1", `mixes to bench: "all" or comma-separated 1-based list`)
	policies := flag.String("policies", "all", `policies to bench: "all" or comma-separated names`)
	warmup := flag.Uint64("warmup", 0, "warm-up cycles (0 = preset default)")
	measure := flag.Uint64("measure", 0, "measured cycles (0 = preset default)")
	seed := flag.Uint64("seed", 1, "workload and endurance seed")
	out := flag.String("out", "BENCH_hotpath.json", "JSON report path (empty disables)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile after the sweep")
	csvOut := flag.Bool("csv", false, "emit CSV on stdout")
	jsonOut := flag.Bool("json", false, "emit JSON on stdout")
	flag.Parse()

	mixList, err := cliutil.ParseMixes(*mixes)
	if err != nil {
		fatal(err)
	}
	polList, err := parsePolicies(*policies)
	if err != nil {
		fatal(err)
	}

	cfg := core.DefaultConfig()
	w, m := uint64(2_000_000), uint64(2_000_000)
	if *quick {
		cfg = core.QuickConfig()
		w, m = 300_000, 300_000
	}
	if *warmup > 0 {
		w = *warmup
	}
	if *measure > 0 {
		m = *measure
	}
	cfg.Seed = *seed
	opt := experiments.HotPathOptions{
		Base:     cfg,
		Mixes:    mixList,
		Policies: polList,
		Warmup:   w,
		Measure:  m,
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	rows, results, err := experiments.HotPathBench(opt)
	if err != nil {
		fatal(err)
	}
	rep := experiments.HotPathReport(opt, rows, results)

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := rep.Write(f, report.JSON); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "bench: wrote %s\n", *out)
	}
	if err := rep.Write(os.Stdout, report.FormatOf(*jsonOut, *csvOut)); err != nil {
		fatal(err)
	}
	if err := cliutil.ErrOf(results); err != nil {
		fatal(err)
	}
}

// parsePolicies converts the -policies selector into policy names,
// validated against the registry.
func parsePolicies(arg string) ([]string, error) {
	if arg == "all" {
		return core.Policies(), nil
	}
	valid := make(map[string]bool)
	for _, p := range core.Policies() {
		valid[p] = true
	}
	var out []string
	for _, tok := range strings.Split(arg, ",") {
		p := strings.TrimSpace(tok)
		if !valid[p] {
			return nil, fmt.Errorf("unknown policy %q (valid: %v)", p, core.Policies())
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty policy list")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
