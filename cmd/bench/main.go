// Command bench measures the simulator's hot-path cost — ns, heap
// allocations and allocated bytes per LLC access — across a mix×policy
// cross, and writes the result as BENCH_hotpath.json through the shared
// report sink. It is the performance baseline the alloc-regression tests
// pin: run it before and after a change and compare the JSON (or pipe
// two text runs through benchstat).
//
//	bench -quick                               # CI baseline, writes BENCH_hotpath.json
//	bench -quick -mixes 1,2 -policies BH,CP_SD # a smaller cross
//	bench -cpuprofile cpu.out -memprofile mem.out -quick
//
// With -parallel it instead measures the set-sharded engine's wall-clock
// scaling curve (1..GOMAXPROCS shards, same simulation at every count,
// fault-digest equivalence checked) and writes BENCH_parallel.json:
//
//	bench -parallel -quick
//	bench -parallel -shards 1,2,4,8 -out BENCH_parallel.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	quick := flag.Bool("quick", false, "small configuration, short windows")
	mixes := flag.String("mixes", "1", `mixes to bench: "all" or comma-separated 1-based list`)
	policies := flag.String("policies", "all", `policies to bench: "all" or comma-separated names`)
	warmup := flag.Uint64("warmup", 0, "warm-up cycles (0 = preset default)")
	measure := flag.Uint64("measure", 0, "measured cycles (0 = preset default)")
	seed := flag.Uint64("seed", 1, "workload and endurance seed")
	parallel := flag.Bool("parallel", false, "bench the set-sharded engine's scaling curve instead of the hot path")
	estimate := flag.Bool("estimate", false, "bench the POST /v1/estimate cached fast path instead of the hot path (gates: p50 < 1 ms, 0 allocs per cache lookup)")
	estIters := flag.Int("estimate-iters", 2000, "cached-estimate requests to measure with -estimate")
	shardsArg := flag.String("shards", "", "comma-separated shard counts for -parallel (default 1..GOMAXPROCS)")
	out := flag.String("out", "", `JSON report path ("" selects BENCH_hotpath.json, or BENCH_parallel.json with -parallel; "none" disables)`)
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile after the sweep")
	csvOut := flag.Bool("csv", false, "emit CSV on stdout")
	jsonOut := flag.Bool("json", false, "emit JSON on stdout")
	flag.Parse()

	cfg := core.DefaultConfig()
	w, m := uint64(2_000_000), uint64(2_000_000)
	if *quick {
		cfg = core.QuickConfig()
		w, m = 300_000, 300_000
	}
	if *warmup > 0 {
		w = *warmup
	}
	if *measure > 0 {
		m = *measure
	}
	cfg.Seed = *seed

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	var rep *report.Report
	var results []cliutil.TaskResult
	var equivErr error
	defaultOut := "BENCH_hotpath.json"
	if *estimate {
		defaultOut = "BENCH_estimate.json"
		var err error
		rep, err = estimateBench(*estIters)
		if rep == nil {
			fatal(err)
		}
		equivErr = err // report first, then fail the gate
	} else if *parallel {
		defaultOut = "BENCH_parallel.json"
		var shardList []int
		if *shardsArg != "" {
			var err error
			if shardList, err = cliutil.ParseInts(*shardsArg); err != nil {
				fatal(err)
			}
			if err := cliutil.ValidateShardCounts(cfg, shardList); err != nil {
				fatal(err)
			}
		}
		// The scaling curve measures one policy; honor an explicit
		// single-policy -policies selection, keep the config default
		// (the paper's CP_SD) otherwise.
		if *policies != "all" {
			polList, err := parsePolicies(*policies)
			if err != nil {
				fatal(err)
			}
			if len(polList) != 1 {
				fatal(fmt.Errorf("-parallel measures a single policy, got %v", polList))
			}
			cfg.PolicyName = polList[0]
		}
		opt := experiments.ScalingOptions{
			Base:    cfg,
			Shards:  shardList,
			Warmup:  w,
			Measure: m,
		}
		rows, err := experiments.ParallelScalingBench(opt)
		if err != nil {
			fatal(err)
		}
		rep = experiments.ParallelScalingReport(opt, rows)
		if !experiments.ScalingEquivalent(rows) {
			equivErr = fmt.Errorf("fault digests diverge across shard counts — see the report")
		}
	} else {
		mixList, err := cliutil.ParseMixes(*mixes)
		if err != nil {
			fatal(err)
		}
		polList, err := parsePolicies(*policies)
		if err != nil {
			fatal(err)
		}
		opt := experiments.HotPathOptions{
			Base:     cfg,
			Mixes:    mixList,
			Policies: polList,
			Warmup:   w,
			Measure:  m,
		}
		var rows []experiments.HotPathRow
		rows, results, err = experiments.HotPathBench(opt)
		if err != nil {
			fatal(err)
		}
		rep = experiments.HotPathReport(opt, rows, results)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}

	path := *out
	if path == "" {
		path = defaultOut
	}
	if path != "none" {
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := rep.Write(f, report.JSON); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "bench: wrote %s\n", path)
	}
	if err := rep.Write(os.Stdout, report.FormatOf(*jsonOut, *csvOut)); err != nil {
		fatal(err)
	}
	if err := cliutil.ErrOf(results); err != nil {
		fatal(err)
	}
	if equivErr != nil {
		fatal(equivErr)
	}
}

// parsePolicies converts the -policies selector into policy names,
// validated against the registry.
func parsePolicies(arg string) ([]string, error) {
	if arg == "all" {
		return core.Policies(), nil
	}
	valid := make(map[string]bool)
	for _, p := range core.Policies() {
		valid[p] = true
	}
	var out []string
	for _, tok := range strings.Split(arg, ",") {
		p := strings.TrimSpace(tok)
		if !valid[p] {
			return nil, fmt.Errorf("unknown policy %q (valid: %v)", p, core.Policies())
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty policy list")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
