package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/report"
	"repro/internal/server"
)

// estimateBody is the benchmarked query: a quick config whose
// calibration takes well under a second, so the measured path is the
// cached one the latency budget applies to.
const estimateBody = `{
  "config": {"llc_sets": 256, "scale": 0.15, "l2_size_kb": 64, "epoch_cycles": 200000,
             "policy": "BH", "endurance_mean": 20000},
  "warmup_cycles": 100000,
  "calibration_cycles": 300000
}`

// estimateBudget is the latency the cached POST /v1/estimate path must
// hold: the analytic fast path's whole point is answering before a
// simulation could even warm up.
const estimateBudget = time.Millisecond

// estimateBench measures the POST /v1/estimate fast path end to end —
// HTTP round trip over a loopback listener, cached calibration — and
// the estimator's in-process Lookup allocation count. It returns an
// error when the p50 exceeds the 1 ms budget or Lookup allocates: the
// bench is the regression gate, not just a report.
func estimateBench(iters int) (*report.Report, error) {
	m, err := server.NewManager(server.Options{Workers: 2})
	if err != nil {
		return nil, err
	}
	defer m.Close()
	srv := httptest.NewServer(server.NewHandler(m, nil))
	defer srv.Close()

	post := func() (time.Duration, error) {
		t0 := time.Now()
		resp, err := http.Post(srv.URL+"/v1/estimate", "application/json", strings.NewReader(estimateBody))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("estimate returned %d", resp.StatusCode)
		}
		return time.Since(t0), nil
	}

	calibration, err := post() // first query calibrates
	if err != nil {
		return nil, err
	}
	lat := make([]time.Duration, iters)
	for i := range lat {
		if lat[i], err = post(); err != nil {
			return nil, err
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p50 := lat[len(lat)/2]
	p99 := lat[len(lat)*99/100]
	var sum time.Duration
	for _, d := range lat {
		sum += d
	}

	// The in-process fast path under the handler: a cached Lookup must
	// not touch the heap.
	spec, err := server.DecodeEstimateSpec([]byte(estimateBody))
	if err != nil {
		return nil, err
	}
	key := spec.CacheKey()
	est := m.Estimator()
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := est.Lookup(key); !ok {
			panic("bench: calibration evicted mid-run")
		}
	})

	rep := report.NewReport("bench: POST /v1/estimate fast path")
	tab := report.New("cached-estimate latency over loopback HTTP",
		"iters", "calibration_ms", "p50_us", "p99_us", "mean_us", "budget_us", "lookup_allocs")
	tab.AddRow(iters,
		fmt.Sprintf("%.2f", float64(calibration.Microseconds())/1e3),
		fmt.Sprintf("%.1f", float64(p50.Nanoseconds())/1e3),
		fmt.Sprintf("%.1f", float64(p99.Nanoseconds())/1e3),
		fmt.Sprintf("%.1f", float64(sum.Nanoseconds())/float64(iters)/1e3),
		fmt.Sprintf("%.1f", float64(estimateBudget.Nanoseconds())/1e3),
		allocs)
	rep.AddTable(tab)

	if p50 >= estimateBudget {
		return rep, fmt.Errorf("cached estimate p50 %v exceeds the %v budget", p50, estimateBudget)
	}
	if allocs != 0 {
		return rep, fmt.Errorf("estimator Lookup allocates %.1f times per call, want 0", allocs)
	}
	return rep, nil
}
