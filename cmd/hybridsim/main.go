// Command hybridsim runs a single hybrid-LLC simulation window with any
// insertion policy and prints the performance and NVM-write summary. All
// counters come from the system's metrics registry and are rendered
// through the shared report sink (text, CSV or JSON).
//
// Examples:
//
//	hybridsim -policy CP_SD -mix 5
//	hybridsim -policy CA_RWR -cpth 40 -measure 20000000
//	hybridsim -policy CP_SD_Th -th 8 -capacity 0.8
//	hybridsim -config sweep-point.json            # full config from JSON
//	hybridsim -trace mix4 -mix 4                  # replay tracegen -mix output
//	hybridsim -json | jq .fields.mean_ipc
//	hybridsim -epochs -csv > epochs.csv
//
// With -config the file (core.Config JSON, unknown fields rejected) is
// loaded first and explicitly set flags override it. With -trace the
// per-core stimulus is replayed from tracegen's prefix.coreN.trc files
// (gzip-compressed traces are detected transparently) instead of being
// generated live; mix, seed and scale must match the recording.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/check"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	def := core.DefaultConfig()
	configPath := flag.String("config", "", "load a core.Config JSON file (flags set explicitly still override)")
	tracePrefix := flag.String("trace", "", "replay recorded traces from prefix.coreN.trc instead of live generation")
	policyName := flag.String("policy", def.PolicyName, "insertion policy (SRAM16, SRAM4, BH, BH_CP, CA, CA_RWR, CP_SD, CP_SD_Th, LHybrid, TAP)")
	mix := flag.Int("mix", 1, fmt.Sprintf("mix number (1-%d: Table V plus skewed-traffic scenarios)", len(core.AllMixes())))
	seed := flag.Uint64("seed", def.Seed, "deterministic seed")
	scale := flag.Float64("scale", def.Scale, "workload footprint scale")
	sets := flag.Int("sets", def.LLCSets, "LLC sets")
	sram := flag.Int("sram", def.SRAMWays, "SRAM ways")
	nvmWays := flag.Int("nvm", def.NVMWays, "NVM ways")
	l2kb := flag.Int("l2kb", def.L2SizeKB, "L2 size in KB")
	cpth := flag.Int("cpth", def.CPth, "fixed compression threshold for CA/CA_RWR")
	th := flag.Float64("th", def.Th, "CP_SD_Th hit-sacrifice percentage")
	tw := flag.Float64("tw", def.Tw, "CP_SD_Th write-reduction percentage")
	cv := flag.Float64("cv", def.EnduranceCV, "endurance coefficient of variation")
	nvmlat := flag.Float64("nvmlat", def.NVMLatencyFactor, "NVM data-array latency factor")
	capacity := flag.Float64("capacity", 1.0, "pre-age the NVM part to this capacity fraction")
	warmup := flag.Uint64("warmup", 2_000_000, "warm-up cycles")
	measure := flag.Uint64("measure", 10_000_000, "measured cycles")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	csvOut := flag.Bool("csv", false, "emit the report as CSV")
	epochs := flag.Bool("epochs", false, "include the per-epoch series (IPC, LLC traffic, NVM bytes, CPth)")
	allMetrics := flag.Bool("metrics", false, "include the full registry delta of the measured window")
	prefetch := flag.Bool("prefetch", false, "enable the L2 stride prefetcher")
	rrip := flag.Bool("rrip", false, "use fit-RRIP NVM replacement instead of fit-LRU")
	checkEvery := flag.Uint64("checkevery", 0, "run the invariant checker every N LLC accesses (0 disables)")
	shards := flag.Int("shards", 1, "set shards; >1 runs the parallel engine (bit-identical for any count)")
	coloring := flag.String("coloring", "", `set coloring: "xor:mask=N", "rotate:interval=N,step=N", "wear:interval=N,pairs=N" or "off"`)
	flag.Parse()

	cfg := def
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			fatal(err)
		}
		if err := core.UnmarshalStrict(data, &cfg); err != nil {
			fatal(fmt.Errorf("%s: %w", *configPath, err))
		}
	}

	// Explicitly set flags win over the config file; with no -config this
	// reduces to the classic flags-over-defaults behaviour.
	shardCount := cfg.Shards
	if shardCount < 1 {
		shardCount = 1
	}
	coloringSet := false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "policy":
			cfg.PolicyName = *policyName
		case "mix":
			cfg.MixID = *mix - 1
		case "seed":
			cfg.Seed = *seed
		case "scale":
			cfg.Scale = *scale
		case "sets":
			cfg.LLCSets = *sets
		case "sram":
			cfg.SRAMWays = *sram
		case "nvm":
			cfg.NVMWays = *nvmWays
		case "l2kb":
			cfg.L2SizeKB = *l2kb
		case "cpth":
			cfg.CPth = *cpth
		case "th":
			cfg.Th = *th
		case "tw":
			cfg.Tw = *tw
		case "cv":
			cfg.EnduranceCV = *cv
		case "nvmlat":
			cfg.NVMLatencyFactor = *nvmlat
		case "prefetch":
			cfg.EnablePrefetcher = *prefetch
		case "rrip":
			cfg.NVMRRIP = *rrip
		case "checkevery":
			cfg.CheckEvery = *checkEvery
		case "shards":
			shardCount = *shards
		case "coloring":
			coloringSet = true
		}
	})
	// An explicit -coloring flag replaces (or with "off", clears) any
	// coloring block loaded from -config; ApplyColoring validates.
	if coloringSet {
		if err := cliutil.ApplyColoring(&cfg, *coloring); err != nil {
			fatal(err)
		}
	}
	if err := cliutil.ApplyShards(&cfg, shardCount, cliutil.ShardIncompat{
		When: *tracePrefix != "",
		Flag: "-trace",
		Why:  "replays through the sequential engine; run trace-driven studies with -shards 1",
	}); err != nil {
		fatal(err)
	}

	var h *core.RunHandle
	var err error
	if *tracePrefix != "" {
		progs, perr := cliutil.LoadMixPrograms(*tracePrefix, cfg.MixID, cfg.Seed, cfg.Scale)
		if perr != nil {
			fatal(perr)
		}
		h, err = cfg.NewRunHandleFromPrograms(progs)
	} else {
		h, err = cfg.NewRunHandle()
	}
	if err != nil {
		fatal(err)
	}
	defer h.Close()

	if *capacity < 1 {
		h.PreAge(*capacity)
	}
	s, err := h.MeasureCtx(context.Background(), *warmup, *measure, core.RunHooks{})
	if err != nil {
		fatal(err)
	}
	cpthWinner := -1
	if w, ok := h.DuelingWinner(); ok {
		cpthWinner = w
	}

	opt := cliutil.RunReportOptions{CPthWinner: cpthWinner, Metrics: *allMetrics}
	if *epochs {
		opt.Epochs = h.EpochRing().Samples()
	}
	rep := cliutil.RunReport(cfg, s, opt)
	var checkErr error
	if chk, ok := h.System().AccessProbe().(*check.Checker); ok {
		chk.ReportInto(rep)
		checkErr = chk.Err()
	}
	if err := rep.Write(os.Stdout, report.FormatOf(*jsonOut, *csvOut)); err != nil {
		fatal(err)
	}
	if checkErr != nil {
		fatal(checkErr)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hybridsim:", err)
	os.Exit(1)
}
