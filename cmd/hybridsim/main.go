// Command hybridsim runs a single hybrid-LLC simulation window with any
// insertion policy and prints the performance and NVM-write summary. All
// counters come from the system's metrics registry and are rendered
// through the shared report sink (text, CSV or JSON).
//
// Examples:
//
//	hybridsim -policy CP_SD -mix 5
//	hybridsim -policy CA_RWR -cpth 40 -measure 20000000
//	hybridsim -policy CP_SD_Th -th 8 -capacity 0.8
//	hybridsim -json | jq .fields.mean_ipc
//	hybridsim -epochs -csv > epochs.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/hier"
	"repro/internal/report"
	"repro/internal/stats"
)

func main() {
	cfg := core.DefaultConfig()
	policyName := flag.String("policy", cfg.PolicyName, "insertion policy (SRAM16, SRAM4, BH, BH_CP, CA, CA_RWR, CP_SD, CP_SD_Th, LHybrid, TAP)")
	mix := flag.Int("mix", 1, "Table V mix number (1-10)")
	seed := flag.Uint64("seed", cfg.Seed, "deterministic seed")
	scale := flag.Float64("scale", cfg.Scale, "workload footprint scale")
	sets := flag.Int("sets", cfg.LLCSets, "LLC sets")
	sram := flag.Int("sram", cfg.SRAMWays, "SRAM ways")
	nvmWays := flag.Int("nvm", cfg.NVMWays, "NVM ways")
	l2kb := flag.Int("l2kb", cfg.L2SizeKB, "L2 size in KB")
	cpth := flag.Int("cpth", cfg.CPth, "fixed compression threshold for CA/CA_RWR")
	th := flag.Float64("th", cfg.Th, "CP_SD_Th hit-sacrifice percentage")
	tw := flag.Float64("tw", cfg.Tw, "CP_SD_Th write-reduction percentage")
	cv := flag.Float64("cv", cfg.EnduranceCV, "endurance coefficient of variation")
	nvmlat := flag.Float64("nvmlat", cfg.NVMLatencyFactor, "NVM data-array latency factor")
	capacity := flag.Float64("capacity", 1.0, "pre-age the NVM part to this capacity fraction")
	warmup := flag.Uint64("warmup", 2_000_000, "warm-up cycles")
	measure := flag.Uint64("measure", 10_000_000, "measured cycles")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	csvOut := flag.Bool("csv", false, "emit the report as CSV")
	epochs := flag.Bool("epochs", false, "include the per-epoch series (IPC, LLC traffic, NVM bytes, CPth)")
	allMetrics := flag.Bool("metrics", false, "include the full registry delta of the measured window")
	prefetch := flag.Bool("prefetch", false, "enable the L2 stride prefetcher")
	rrip := flag.Bool("rrip", false, "use fit-RRIP NVM replacement instead of fit-LRU")
	checkEvery := flag.Uint64("checkevery", 0, "run the invariant checker every N LLC accesses (0 disables)")
	shards := flag.Int("shards", 1, "set shards; >1 runs the parallel engine (bit-identical for any count)")
	flag.Parse()

	cfg.PolicyName = *policyName
	cfg.MixID = *mix - 1
	cfg.Seed = *seed
	cfg.Scale = *scale
	cfg.LLCSets = *sets
	cfg.SRAMWays = *sram
	cfg.NVMWays = *nvmWays
	cfg.L2SizeKB = *l2kb
	cfg.CPth = *cpth
	cfg.Th, cfg.Tw = *th, *tw
	cfg.EnduranceCV = *cv
	cfg.NVMLatencyFactor = *nvmlat
	cfg.EnablePrefetcher = *prefetch
	cfg.NVMRRIP = *rrip
	cfg.CheckEvery = *checkEvery
	cfg.Shards = *shards
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}

	// -shards >1 drives the same scenario through the set-sharded
	// parallel engine; the summary, metrics and epoch series come out of
	// the engine's merged registry instead of the sequential system's.
	var sys *hier.System
	var s core.Summary
	var cpthWinner = -1
	if cfg.Shards > 1 {
		e, err := cfg.BuildEngine()
		if err != nil {
			fatal(err)
		}
		defer e.Close()
		if *capacity < 1 {
			core.PreAgeEngine(e, *capacity)
		}
		s = core.MeasureEngine(e, *warmup, *measure)
		if d, ok := e.Dueling(); ok {
			cpthWinner = d.Winner()
		}
		sys = e.System()
	} else {
		seq, err := cfg.Build()
		if err != nil {
			fatal(err)
		}
		if *capacity < 1 {
			core.PreAge(seq, *capacity)
		}
		s = core.Measure(seq, *warmup, *measure)
		if d, ok := core.Dueling(seq); ok {
			cpthWinner = d.Winner()
		}
		sys = seq
	}

	rep := report.NewReport(fmt.Sprintf("hybridsim: %s mix %d", s.Policy, *mix))
	rep.AddField("policy", s.Policy)
	rep.AddField("mix", *mix)
	rep.AddField("mean_ipc", s.MeanIPC)
	rep.AddField("hit_rate", s.HitRate)
	rep.AddField("hits", s.Hits)
	rep.AddField("misses", s.Misses)
	rep.AddField("sram_hits", s.SRAMHits)
	rep.AddField("nvm_hits", s.NVMHits)
	rep.AddField("inserts", s.Inserts)
	rep.AddField("migrations", s.Migrations)
	rep.AddField("nvm_block_writes", s.NVMBlockWrites)
	rep.AddField("nvm_bytes_written", s.NVMBytesWritten)
	rep.AddField("nvm_bytes_si", stats.FormatSI(float64(s.NVMBytesWritten)))
	rep.AddField("nvm_capacity", s.Capacity)
	if cfg.Shards > 1 {
		rep.AddField("shards", cfg.Shards)
	}
	if cpthWinner >= 0 {
		rep.AddField("cpth_winner", cpthWinner)
	}
	if *allMetrics {
		rep.AddTable(report.SnapshotTable("window metrics", s.Metrics))
	}
	if *epochs {
		rep.AddTable(report.SeriesTable("epoch series", sys.EpochRing()))
	}
	var checkErr error
	if chk, ok := sys.AccessProbe().(*check.Checker); ok {
		chk.ReportInto(rep)
		checkErr = chk.Err()
	}
	if err := rep.Write(os.Stdout, report.FormatOf(*jsonOut, *csvOut)); err != nil {
		fatal(err)
	}
	if checkErr != nil {
		fatal(checkErr)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hybridsim:", err)
	os.Exit(1)
}
