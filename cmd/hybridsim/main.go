// Command hybridsim runs a single hybrid-LLC simulation window with any
// insertion policy and prints the performance and NVM-write summary.
//
// Examples:
//
//	hybridsim -policy CP_SD -mix 5
//	hybridsim -policy CA_RWR -cpth 40 -measure 20000000
//	hybridsim -policy CP_SD_Th -th 8 -capacity 0.8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/stats"
)

func main() {
	cfg := core.DefaultConfig()
	policyName := flag.String("policy", cfg.PolicyName, "insertion policy (SRAM16, SRAM4, BH, BH_CP, CA, CA_RWR, CP_SD, CP_SD_Th, LHybrid, TAP)")
	mix := flag.Int("mix", 1, "Table V mix number (1-10)")
	seed := flag.Uint64("seed", cfg.Seed, "deterministic seed")
	scale := flag.Float64("scale", cfg.Scale, "workload footprint scale")
	sets := flag.Int("sets", cfg.LLCSets, "LLC sets")
	sram := flag.Int("sram", cfg.SRAMWays, "SRAM ways")
	nvmWays := flag.Int("nvm", cfg.NVMWays, "NVM ways")
	l2kb := flag.Int("l2kb", cfg.L2SizeKB, "L2 size in KB")
	cpth := flag.Int("cpth", cfg.CPth, "fixed compression threshold for CA/CA_RWR")
	th := flag.Float64("th", 4, "CP_SD_Th hit-sacrifice percentage")
	tw := flag.Float64("tw", 5, "CP_SD_Th write-reduction percentage")
	cv := flag.Float64("cv", cfg.EnduranceCV, "endurance coefficient of variation")
	nvmlat := flag.Float64("nvmlat", 1.0, "NVM data-array latency factor")
	capacity := flag.Float64("capacity", 1.0, "pre-age the NVM part to this capacity fraction")
	warmup := flag.Uint64("warmup", 2_000_000, "warm-up cycles")
	measure := flag.Uint64("measure", 10_000_000, "measured cycles")
	jsonOut := flag.Bool("json", false, "emit the summary as JSON")
	prefetch := flag.Bool("prefetch", false, "enable the L2 stride prefetcher")
	rrip := flag.Bool("rrip", false, "use fit-RRIP NVM replacement instead of fit-LRU")
	flag.Parse()

	cfg.PolicyName = *policyName
	cfg.MixID = *mix - 1
	cfg.Seed = *seed
	cfg.Scale = *scale
	cfg.LLCSets = *sets
	cfg.SRAMWays = *sram
	cfg.NVMWays = *nvmWays
	cfg.L2SizeKB = *l2kb
	cfg.CPth = *cpth
	cfg.Th, cfg.Tw = *th, *tw
	cfg.EnduranceCV = *cv
	cfg.NVMLatencyFactor = *nvmlat
	cfg.EnablePrefetcher = *prefetch
	cfg.NVMRRIP = *rrip

	sys, err := cfg.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hybridsim:", err)
		os.Exit(1)
	}
	if *capacity < 1 {
		core.PreAge(sys, *capacity)
	}
	s := core.Measure(sys, *warmup, *measure)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s); err != nil {
			fmt.Fprintln(os.Stderr, "hybridsim:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("policy            %s\n", s.Policy)
	fmt.Printf("mix               %d\n", *mix)
	fmt.Printf("mean IPC          %.4f\n", s.MeanIPC)
	fmt.Printf("LLC hit rate      %.4f  (%d hits / %d misses)\n", s.HitRate, s.Hits, s.Misses)
	fmt.Printf("SRAM / NVM hits   %d / %d\n", s.SRAMHits, s.NVMHits)
	fmt.Printf("LLC inserts       %d  (migrations %d)\n", s.Inserts, s.Migrations)
	fmt.Printf("NVM block writes  %d\n", s.NVMBlockWrites)
	fmt.Printf("NVM bytes written %s\n", stats.FormatSI(float64(s.NVMBytesWritten)))
	fmt.Printf("NVM capacity      %.3f\n", s.Capacity)
	if d, ok := core.Dueling(sys); ok {
		fmt.Printf("CPth winner       %d  (epoch history %v)\n", d.Winner(), tail(d.History, 8))
	}
}

func tail(xs []int, n int) []int {
	if len(xs) <= n {
		return xs
	}
	return xs[len(xs)-n:]
}
