package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/report"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// goldenOptions is a fixed quick run with wear-feedback coloring on the
// zipfian set-pressure mix: small windows keep it test-speed while still
// spanning several epochs, so the per-set heat columns carry real remaps.
func goldenOptions() options {
	return options{
		Policy:   "CP_SD",
		Mix:      11, // CLI mix 12: the multi-tenant interference scenario
		Seed:     42,
		Capacity: 0.5,
		Warmup:   100_000,
		Measure:  400_000,
		Coloring: "wear:interval=1,pairs=16",
		Quick:    true,
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// TestGoldenWearmap pins the wearmap report layout — the field set
// (including the sim_wear_* pre-aging family) and the per-set heat
// tables — and, because the golden bytes embed the measured values, the
// end-to-end determinism of the measure-then-age pipeline.
func TestGoldenWearmap(t *testing.T) {
	rep, err := run(goldenOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		file   string
		format report.Format
	}{
		{"golden_quick.txt", report.Text},
		{"golden_quick.json", report.JSON},
	} {
		var buf bytes.Buffer
		if err := rep.Write(&buf, tc.format); err != nil {
			t.Fatal(err)
		}
		checkGolden(t, tc.file, buf.Bytes())
	}
}

// TestWearmapColumns asserts the report shape directly, independent of
// the golden bytes: the wear-variation field family and the two per-set
// heat tables with their column sets.
func TestWearmapColumns(t *testing.T) {
	rep, err := run(goldenOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Write(&buf, report.Text); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"wear_interset_cov", "wear_intraset_cov", "wear_gini",
		"sim_wear_interset_cov", "sim_wear_intraset_cov", "sim_wear_gini",
		"coloring", "set wear (row mean)", "hottest sets", "mean_wear", "vs_mean",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report lacks %q:\n%s", want, out)
		}
	}
}

// TestWearmapRejects pins the error paths: an SRAM-only policy has no
// NVM array to map, and a malformed coloring spec must fail before the
// simulation is built.
func TestWearmapRejects(t *testing.T) {
	opt := goldenOptions()
	opt.Policy = "SRAM16"
	opt.Coloring = ""
	if _, err := run(opt); err == nil {
		t.Fatal("SRAM-only policy produced a wear map")
	}
	opt = goldenOptions()
	opt.Coloring = "wear:pairs=bogus"
	if _, err := run(opt); err == nil {
		t.Fatal("malformed coloring spec accepted")
	}
}
