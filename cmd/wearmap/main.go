// Command wearmap runs a simulation, ages the NVM array to a target
// capacity with the measured write-rate distribution, and reports how the
// wear and faults are distributed across frames — the view a device
// architect uses to judge wear-leveling quality. Optionally dumps the full
// NVM state (fault maps, wear, endurance limits) to a snapshot file.
//
//	wearmap -policy CP_SD -capacity 0.8
//	wearmap -policy BH -capacity 0.9 -state bh.nvmstate
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/forecast"
	"repro/internal/report"
)

func main() {
	cfg := core.DefaultConfig()
	policyName := flag.String("policy", "CP_SD", "insertion policy")
	mix := flag.Int("mix", 1, "Table V mix number (1-10)")
	capacity := flag.Float64("capacity", 0.8, "age until this capacity fraction")
	measure := flag.Uint64("measure", 8_000_000, "cycles to measure write rates over")
	statePath := flag.String("state", "", "write the aged NVM state snapshot to this file")
	csvOut := flag.Bool("csv", false, "emit CSV")
	flag.Parse()

	cfg.PolicyName = *policyName
	cfg.MixID = *mix - 1
	sys, err := cfg.Build()
	if err != nil {
		fatal(err)
	}
	arr := sys.LLC().Array()
	if arr == nil {
		fatal(fmt.Errorf("policy %s has no NVM part", *policyName))
	}

	// Measure real per-frame write rates, then age with them.
	sys.Run(2_000_000)
	arr.ResetPhase()
	st := sys.Run(*measure)
	seconds := float64(st.Cycles) / 3.5e9
	elapsed, cap := forecast.Age(arr, seconds, *capacity, 1e18)
	sys.LLC().InvalidateUnfit()

	// Distribution of per-frame live bytes and wear.
	frames := arr.Frames()
	live := make([]int, len(frames))
	wear := make([]float64, len(frames))
	dead := 0
	for i, f := range frames {
		live[i] = f.LiveBytes()
		wear[i] = f.Wear()
		if f.Dead() {
			dead++
		}
	}
	sort.Ints(live)
	sort.Float64s(wear)
	pct := func(xs []int, p float64) int { return xs[int(p*float64(len(xs)-1))] }
	pctF := func(xs []float64, p float64) float64 { return xs[int(p*float64(len(xs)-1))] }

	tab := report.New(fmt.Sprintf("NVM wear map: %s mix %d aged to %.0f%% capacity (%.1f months)",
		*policyName, *mix, cap*100, elapsed/forecast.SecondsPerMonth),
		"metric", "p10", "p50", "p90", "max")
	tab.AddRow("live bytes/frame", pct(live, 0.1), pct(live, 0.5), pct(live, 0.9), live[len(live)-1])
	tab.AddRow("wear (writes/byte)", pctF(wear, 0.1), pctF(wear, 0.5), pctF(wear, 0.9), wear[len(wear)-1])
	if err := tab.Write(os.Stdout, *csvOut); err != nil {
		fatal(err)
	}
	fmt.Printf("dead frames: %d / %d (%.1f%%)\n", dead, len(frames),
		100*float64(dead)/float64(len(frames)))
	// Wear imbalance across frames: max/median wear; 1.0 = perfectly level.
	if med := pctF(wear, 0.5); med > 0 {
		fmt.Printf("wear imbalance (p90/p50): %.2f\n", pctF(wear, 0.9)/med)
	}

	if *statePath != "" {
		f, err := os.Create(*statePath)
		if err != nil {
			fatal(err)
		}
		if err := arr.WriteSnapshot(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("NVM state written to %s\n", *statePath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wearmap:", err)
	os.Exit(1)
}
