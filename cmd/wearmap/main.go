// Command wearmap runs a simulation, ages the NVM array to a target
// capacity with the measured write-rate distribution, and reports how the
// wear and faults are distributed across frames and across sets — the
// view a device architect uses to judge wear-leveling quality. The
// device-level aggregates come from the metrics registry's nvm.array.*
// subtree, including the wear-variation family (inter-set and intra-set
// CoV, min/max frame wear, Gini). Optionally dumps the full NVM state
// (fault maps, wear, endurance limits) to a snapshot file.
//
//	wearmap -policy CP_SD -capacity 0.8
//	wearmap -quick -mix 11 -coloring wear:interval=1,pairs=32
//	wearmap -policy BH -capacity 0.9 -state bh.nvmstate
//	wearmap -json | jq .fields.wear_interset_cov
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/forecast"
	"repro/internal/nvm"
	"repro/internal/report"
)

// options carries everything run needs, so the golden-file test can
// drive the full pipeline without going through flag parsing.
type options struct {
	Policy    string
	Mix       int // 0-based
	Seed      uint64
	Capacity  float64
	Warmup    uint64 // 0 = preset default
	Measure   uint64 // 0 = preset default
	Coloring  string // set-coloring spec ("" = off)
	Quick     bool
	StatePath string
}

func main() {
	def := core.DefaultConfig()
	nMixes := len(core.AllMixes())
	policyName := flag.String("policy", def.PolicyName, "insertion policy")
	mix := flag.Int("mix", 1, fmt.Sprintf("mix number (1-%d: Table V plus skewed-traffic scenarios)", nMixes))
	seed := flag.Uint64("seed", def.Seed, "deterministic seed")
	capacity := flag.Float64("capacity", 0.8, "age until this capacity fraction")
	warmup := flag.Uint64("warmup", 0, "warm-up cycles (0 = preset default)")
	measure := flag.Uint64("measure", 0, "cycles to measure write rates over (0 = preset default)")
	coloring := flag.String("coloring", "", `set coloring: "xor:mask=N", "rotate:interval=N,step=N", "wear:interval=N,pairs=N" or "off"`)
	quick := flag.Bool("quick", false, "small configuration, short windows")
	statePath := flag.String("state", "", "write the aged NVM state snapshot to this file")
	csvOut := flag.Bool("csv", false, "emit CSV")
	jsonOut := flag.Bool("json", false, "emit JSON")
	flag.Parse()

	if *mix < 1 || *mix > nMixes {
		fatal(fmt.Errorf("mix %d outside 1-%d", *mix, nMixes))
	}
	rep, err := run(options{
		Policy:    *policyName,
		Mix:       *mix - 1,
		Seed:      *seed,
		Capacity:  *capacity,
		Warmup:    *warmup,
		Measure:   *measure,
		Coloring:  *coloring,
		Quick:     *quick,
		StatePath: *statePath,
	})
	if err != nil {
		fatal(err)
	}
	if err := rep.Write(os.Stdout, report.FormatOf(*jsonOut, *csvOut)); err != nil {
		fatal(err)
	}
}

// run executes the measure-then-age pipeline and builds the report.
func run(opt options) (*report.Report, error) {
	cfg := core.DefaultConfig()
	warmup, measure := uint64(2_000_000), uint64(8_000_000)
	if opt.Quick {
		cfg = core.QuickConfig()
		warmup, measure = 300_000, 1_000_000
	}
	if opt.Warmup > 0 {
		warmup = opt.Warmup
	}
	if opt.Measure > 0 {
		measure = opt.Measure
	}
	cfg.PolicyName = opt.Policy
	cfg.MixID = opt.Mix
	cfg.Seed = opt.Seed
	// ApplyColoring validates the whole config (coloring included).
	if err := cliutil.ApplyColoring(&cfg, opt.Coloring); err != nil {
		return nil, err
	}
	sys, err := cfg.Build()
	if err != nil {
		return nil, err
	}
	arr := sys.LLC().Array()
	if arr == nil {
		return nil, fmt.Errorf("policy %s has no NVM part", opt.Policy)
	}

	// Measure real per-frame write rates, then age with them.
	sys.Run(warmup)
	arr.ResetPhase()
	st := sys.Run(measure)
	// Wear variation of the simulated window itself, before aging: aging
	// runs frames into their endurance limits, which truncates the wear
	// distribution and hides the rate imbalance the coloring schemes act
	// on. These are the numbers wear-leveling quality is judged by.
	simWV := arr.WearVariation()
	seconds := float64(st.Cycles) / 3.5e9
	elapsed, capFrac := forecast.Age(arr, seconds, opt.Capacity, 1e18)
	sys.LLC().InvalidateUnfit()

	// Distribution of per-frame live bytes and wear.
	frames := arr.Frames()
	live := make([]int, len(frames))
	wear := make([]float64, len(frames))
	for i, f := range frames {
		live[i] = f.LiveBytes()
		wear[i] = f.Wear()
	}
	sort.Ints(live)
	sort.Float64s(wear)
	pct := func(xs []int, p float64) int { return xs[int(p*float64(len(xs)-1))] }
	pctF := func(xs []float64, p float64) float64 { return xs[int(p*float64(len(xs)-1))] }

	rep := report.NewReport(fmt.Sprintf("NVM wear map: %s mix %d aged to %.0f%% capacity",
		opt.Policy, opt.Mix+1, capFrac*100))
	rep.AddField("policy", opt.Policy)
	rep.AddField("mix", opt.Mix+1)
	if opt.Coloring != "" && opt.Coloring != "off" {
		rep.AddField("coloring", opt.Coloring)
	}
	rep.AddField("capacity", capFrac)
	rep.AddField("aged_months", elapsed/forecast.SecondsPerMonth)
	// Device aggregates, straight from the registry's nvm.array.* subtree.
	// A fresh snapshot runs the array's aggregation hook, so the gauges
	// reflect the post-aging state rather than the last Run window's.
	snap := sys.Metrics().Snapshot()
	for _, m := range []struct{ field, metric string }{
		{"dead_frames", "nvm.array.dead_frames"},
		{"live_frames", "nvm.array.live_frames"},
		{"faulty_bytes", "nvm.array.faulty_bytes"},
		{"wear_mean", "nvm.array.wear_mean"},
		{"wear_max", "nvm.array.wear_max"},
		{"wear_min", "nvm.array.wear_min"},
		{"wear_interset_cov", "nvm.array.wear_interset_cov"},
		{"wear_intraset_cov", "nvm.array.wear_intraset_cov"},
		{"wear_gini", "nvm.array.wear_gini"},
	} {
		if v, ok := snap.Gauges[m.metric]; ok {
			rep.AddField(m.field, v)
		}
	}
	rep.AddField("sim_wear_interset_cov", simWV.InterSetCoV)
	rep.AddField("sim_wear_intraset_cov", simWV.IntraSetCoV)
	rep.AddField("sim_wear_gini", simWV.Gini)
	rep.AddField("dead_frame_fraction", float64(len(frames)-arr.LiveFrames())/float64(len(frames)))
	// Wear imbalance across frames: p90/median wear; 1.0 = perfectly level.
	if med := pctF(wear, 0.5); med > 0 {
		rep.AddField("wear_imbalance", pctF(wear, 0.9)/med)
	}

	// Per-set heat: mean frame wear per physical set, before sorting the
	// flat frame slice destroys set identity. The hottest-set table uses
	// (wear desc, set asc) ordering so ties report deterministically.
	rowWear := nvm.RowWearInto(make([]float64, cfg.LLCSets), frames, cfg.LLCSets, arr.Ways())
	for i := range rowWear {
		rowWear[i] /= float64(arr.Ways())
	}
	hot := make([]int, len(rowWear))
	for i := range hot {
		hot[i] = i
	}
	sort.Slice(hot, func(a, b int) bool {
		if rowWear[hot[a]] != rowWear[hot[b]] {
			return rowWear[hot[a]] > rowWear[hot[b]]
		}
		return hot[a] < hot[b]
	})
	meanRow := 0.0
	for _, w := range rowWear {
		meanRow += w
	}
	meanRow /= float64(len(rowWear))

	tab := report.New("per-frame distribution", "metric", "p10", "p50", "p90", "max")
	tab.AddRow("live bytes/frame", pct(live, 0.1), pct(live, 0.5), pct(live, 0.9), live[len(live)-1])
	tab.AddRow("wear (writes/byte)", pctF(wear, 0.1), pctF(wear, 0.5), pctF(wear, 0.9), wear[len(wear)-1])
	sortedRow := append([]float64(nil), rowWear...)
	sort.Float64s(sortedRow)
	tab.AddRow("set wear (row mean)", pctF(sortedRow, 0.1), pctF(sortedRow, 0.5), pctF(sortedRow, 0.9), sortedRow[len(sortedRow)-1])
	rep.AddTable(tab)

	heat := report.New("hottest sets", "rank", "set", "mean_wear", "vs_mean")
	n := 8
	if n > len(hot) {
		n = len(hot)
	}
	for i := 0; i < n; i++ {
		ratio := 0.0
		if meanRow > 0 {
			ratio = rowWear[hot[i]] / meanRow
		}
		heat.AddRow(i+1, hot[i], rowWear[hot[i]], ratio)
	}
	rep.AddTable(heat)

	if opt.StatePath != "" {
		f, err := os.Create(opt.StatePath)
		if err != nil {
			return nil, err
		}
		if err := arr.WriteSnapshot(f); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "NVM state written to %s\n", opt.StatePath)
	}
	return rep, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wearmap:", err)
	os.Exit(1)
}
