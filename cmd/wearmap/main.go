// Command wearmap runs a simulation, ages the NVM array to a target
// capacity with the measured write-rate distribution, and reports how the
// wear and faults are distributed across frames — the view a device
// architect uses to judge wear-leveling quality. The device-level
// aggregates come from the metrics registry's nvm.array.* subtree.
// Optionally dumps the full NVM state (fault maps, wear, endurance
// limits) to a snapshot file.
//
//	wearmap -policy CP_SD -capacity 0.8
//	wearmap -policy BH -capacity 0.9 -state bh.nvmstate
//	wearmap -json | jq .fields.wear_imbalance
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/forecast"
	"repro/internal/report"
)

func main() {
	cfg := core.DefaultConfig()
	policyName := flag.String("policy", cfg.PolicyName, "insertion policy")
	mix := flag.Int("mix", 1, "Table V mix number (1-10)")
	capacity := flag.Float64("capacity", 0.8, "age until this capacity fraction")
	measure := flag.Uint64("measure", 8_000_000, "cycles to measure write rates over")
	statePath := flag.String("state", "", "write the aged NVM state snapshot to this file")
	csvOut := flag.Bool("csv", false, "emit CSV")
	jsonOut := flag.Bool("json", false, "emit JSON")
	flag.Parse()

	cfg.PolicyName = *policyName
	cfg.MixID = *mix - 1
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	sys, err := cfg.Build()
	if err != nil {
		fatal(err)
	}
	arr := sys.LLC().Array()
	if arr == nil {
		fatal(fmt.Errorf("policy %s has no NVM part", *policyName))
	}

	// Measure real per-frame write rates, then age with them.
	sys.Run(2_000_000)
	arr.ResetPhase()
	st := sys.Run(*measure)
	seconds := float64(st.Cycles) / 3.5e9
	elapsed, cap := forecast.Age(arr, seconds, *capacity, 1e18)
	sys.LLC().InvalidateUnfit()

	// Distribution of per-frame live bytes and wear.
	frames := arr.Frames()
	live := make([]int, len(frames))
	wear := make([]float64, len(frames))
	for i, f := range frames {
		live[i] = f.LiveBytes()
		wear[i] = f.Wear()
	}
	sort.Ints(live)
	sort.Float64s(wear)
	pct := func(xs []int, p float64) int { return xs[int(p*float64(len(xs)-1))] }
	pctF := func(xs []float64, p float64) float64 { return xs[int(p*float64(len(xs)-1))] }

	rep := report.NewReport(fmt.Sprintf("NVM wear map: %s mix %d aged to %.0f%% capacity",
		*policyName, *mix, cap*100))
	rep.AddField("policy", *policyName)
	rep.AddField("mix", *mix)
	rep.AddField("capacity", cap)
	rep.AddField("aged_months", elapsed/forecast.SecondsPerMonth)
	// Device aggregates, straight from the registry's nvm.array.* subtree.
	// A fresh snapshot runs the array's aggregation hook, so the gauges
	// reflect the post-aging state rather than the last Run window's.
	snap := sys.Metrics().Snapshot()
	for _, m := range []struct{ field, metric string }{
		{"dead_frames", "nvm.array.dead_frames"},
		{"live_frames", "nvm.array.live_frames"},
		{"faulty_bytes", "nvm.array.faulty_bytes"},
		{"wear_mean", "nvm.array.wear_mean"},
		{"wear_max", "nvm.array.wear_max"},
	} {
		if v, ok := snap.Gauges[m.metric]; ok {
			rep.AddField(m.field, v)
		}
	}
	rep.AddField("dead_frame_fraction", float64(len(frames)-arr.LiveFrames())/float64(len(frames)))
	// Wear imbalance across frames: p90/median wear; 1.0 = perfectly level.
	if med := pctF(wear, 0.5); med > 0 {
		rep.AddField("wear_imbalance", pctF(wear, 0.9)/med)
	}

	tab := report.New("per-frame distribution", "metric", "p10", "p50", "p90", "max")
	tab.AddRow("live bytes/frame", pct(live, 0.1), pct(live, 0.5), pct(live, 0.9), live[len(live)-1])
	tab.AddRow("wear (writes/byte)", pctF(wear, 0.1), pctF(wear, 0.5), pctF(wear, 0.9), wear[len(wear)-1])
	rep.AddTable(tab)
	if err := rep.Write(os.Stdout, report.FormatOf(*jsonOut, *csvOut)); err != nil {
		fatal(err)
	}

	if *statePath != "" {
		f, err := os.Create(*statePath)
		if err != nil {
			fatal(err)
		}
		if err := arr.WriteSnapshot(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "NVM state written to %s\n", *statePath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wearmap:", err)
	os.Exit(1)
}
