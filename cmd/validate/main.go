// Command validate runs the repository's end-to-end self-checks: the
// bit-exact NVM data path under live traffic and aging, trace-replay
// fidelity, structural LLC invariants for every policy, and determinism.
// It exits non-zero if any check fails.
//
//	validate          # quick (seconds)
//	validate -deep    # larger windows
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"reflect"

	"repro/internal/core"
	"repro/internal/hier"
	"repro/internal/hybrid"
	"repro/internal/nvm"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

var failed bool

func check(name string, err error) {
	if err != nil {
		failed = true
		fmt.Printf("FAIL  %-40s %v\n", name, err)
		return
	}
	fmt.Printf("ok    %s\n", name)
}

func main() {
	deep := flag.Bool("deep", false, "run larger validation windows")
	flag.Parse()
	cycles := uint64(2_000_000)
	if *deep {
		cycles = 10_000_000
	}

	check("materialized data path (live traffic)", materialized(cycles))
	check("materialized data path (after aging)", materializedAged(cycles))
	check("trace replay fidelity", traceFidelity(cycles))
	check("LLC invariants, all policies", invariants(cycles))
	check("determinism", determinism(cycles))

	if failed {
		os.Exit(1)
	}
	fmt.Println("all validations passed")
}

func materialized(cycles uint64) error {
	cfg := core.QuickConfig()
	cfg.MaterializeData = true
	sys, err := cfg.Build()
	if err != nil {
		return err
	}
	sys.Run(cycles)
	if n := sys.LLC().Stats.DataPathErrors; n != 0 {
		return fmt.Errorf("%d data-path verification errors", n)
	}
	if sys.LLC().Stats.NVMHits == 0 {
		return fmt.Errorf("no NVM hits: verification never exercised")
	}
	return sys.LLC().VerifyAllResident()
}

func materializedAged(cycles uint64) error {
	cfg := core.QuickConfig()
	cfg.MaterializeData = true
	sys, err := cfg.Build()
	if err != nil {
		return err
	}
	sys.Run(cycles / 2)
	core.PreAge(sys, 0.8)
	sys.LLC().Array().Counter().Advance(29)
	sys.Run(cycles / 2)
	if n := sys.LLC().Stats.DataPathErrors; n != 0 {
		return fmt.Errorf("%d data-path errors after aging", n)
	}
	return sys.LLC().VerifyAllResident()
}

func traceFidelity(cycles uint64) error {
	const mix, seed, scale = 3, 9, 0.15
	mk := func() *hybrid.LLC {
		return hybrid.New(hybrid.Config{
			Sets: 128, SRAMWays: 4, NVMWays: 12,
			Policy:     policy.CARWR{},
			Thresholds: hybrid.FixedThreshold(58),
			Endurance:  nvm.EnduranceModel{Mean: 1e10, CV: 0.2},
			Sampler:    stats.NewRNG(2),
		})
	}
	hcfg := hier.DefaultConfig()

	genApps, err := workload.NewMix(mix, seed, scale)
	if err != nil {
		return err
	}
	gen := hier.New(hcfg, mk(), genApps).Run(cycles)

	recApps, _ := workload.NewMix(mix, seed, scale)
	contentApps, _ := workload.NewMix(mix, seed, scale)
	progs := make([]hier.Program, len(recApps))
	for i, app := range recApps {
		var buf bytes.Buffer
		if err := trace.Record(app, int(cycles), &buf); err != nil {
			return err
		}
		rep, err := trace.Load(&buf)
		if err != nil {
			return err
		}
		progs[i] = trace.NewProgram(rep, contentApps[i])
	}
	rep := hier.NewFromPrograms(hcfg, mk(), progs).Run(cycles)
	if gen.LLC != rep.LLC || gen.MeanIPC != rep.MeanIPC {
		return fmt.Errorf("trace-driven run diverged from generator-driven run")
	}
	return nil
}

func invariants(cycles uint64) error {
	for _, name := range core.Policies() {
		cfg := core.QuickConfig()
		cfg.PolicyName = name
		cfg.Th = 4
		sys, err := cfg.Build()
		if err != nil {
			return fmt.Errorf("%s: %v", name, err)
		}
		sys.Run(cycles)
		if err := sys.LLC().CheckInvariants(); err != nil {
			return fmt.Errorf("%s: %v", name, err)
		}
	}
	return nil
}

func determinism(cycles uint64) error {
	run := func() core.Summary {
		cfg := core.QuickConfig()
		sys, err := cfg.Build()
		if err != nil {
			panic(err)
		}
		return core.Measure(sys, cycles/4, cycles)
	}
	// DeepEqual covers the full registry delta too, so every counter and
	// gauge — not just the summary scalars — must reproduce exactly.
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		return fmt.Errorf("two identical runs produced different results")
	}
	return nil
}
