// Command validate runs the repository's end-to-end self-checks: the
// bit-exact NVM data path under live traffic and aging, trace-replay
// fidelity, structural LLC invariants for every policy, and determinism.
// It exits non-zero if any check fails.
//
//	validate          # quick (seconds)
//	validate -deep    # larger windows
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"reflect"

	invcheck "repro/internal/check"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/hier"
	"repro/internal/hybrid"
	"repro/internal/nvm"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

var failed bool

func check(name string, err error) {
	if err != nil {
		failed = true
		fmt.Printf("FAIL  %-40s %v\n", name, err)
		return
	}
	fmt.Printf("ok    %s\n", name)
}

func main() {
	deep := flag.Bool("deep", false, "run larger validation windows")
	flag.Parse()
	cycles := uint64(2_000_000)
	if *deep {
		cycles = 10_000_000
	}

	check("materialized data path (live traffic)", materialized(cycles))
	check("materialized data path (after aging)", materializedAged(cycles))
	check("trace replay fidelity", traceFidelity(cycles))
	check("LLC invariants, all policies", invariants(cycles))
	check("determinism", determinism(cycles))
	check("runtime invariant checker", runtimeChecker(cycles))
	check("fault campaign to 50% capacity", faultCampaign(cycles))

	if failed {
		os.Exit(1)
	}
	fmt.Println("all validations passed")
}

func materialized(cycles uint64) error {
	cfg := core.QuickConfig()
	cfg.MaterializeData = true
	sys, err := cfg.Build()
	if err != nil {
		return err
	}
	sys.Run(cycles)
	if n := sys.LLC().Stats.DataPathErrors; n != 0 {
		return fmt.Errorf("%d data-path verification errors", n)
	}
	if sys.LLC().Stats.NVMHits == 0 {
		return fmt.Errorf("no NVM hits: verification never exercised")
	}
	return sys.LLC().VerifyAllResident()
}

func materializedAged(cycles uint64) error {
	cfg := core.QuickConfig()
	cfg.MaterializeData = true
	sys, err := cfg.Build()
	if err != nil {
		return err
	}
	sys.Run(cycles / 2)
	core.PreAge(sys, 0.8)
	sys.LLC().Array().Counter().Advance(29)
	sys.Run(cycles / 2)
	if n := sys.LLC().Stats.DataPathErrors; n != 0 {
		return fmt.Errorf("%d data-path errors after aging", n)
	}
	return sys.LLC().VerifyAllResident()
}

func traceFidelity(cycles uint64) error {
	const mix, seed, scale = 3, 9, 0.15
	mk := func() *hybrid.LLC {
		return hybrid.New(hybrid.Config{
			Sets: 128, SRAMWays: 4, NVMWays: 12,
			Policy:     policy.CARWR{},
			Thresholds: hybrid.FixedThreshold(58),
			Endurance:  nvm.EnduranceModel{Mean: 1e10, CV: 0.2},
			Sampler:    stats.NewRNG(2),
		})
	}
	hcfg := hier.DefaultConfig()

	genApps, err := workload.NewMix(mix, seed, scale)
	if err != nil {
		return err
	}
	gen := hier.New(hcfg, mk(), genApps).Run(cycles)

	recApps, _ := workload.NewMix(mix, seed, scale)
	contentApps, _ := workload.NewMix(mix, seed, scale)
	progs := make([]hier.Program, len(recApps))
	for i, app := range recApps {
		var buf bytes.Buffer
		if err := trace.Record(app, int(cycles), &buf); err != nil {
			return err
		}
		rep, err := trace.Load(&buf)
		if err != nil {
			return err
		}
		progs[i] = trace.NewProgram(rep, contentApps[i])
	}
	rep := hier.NewFromPrograms(hcfg, mk(), progs).Run(cycles)
	if gen.LLC != rep.LLC || gen.MeanIPC != rep.MeanIPC {
		return fmt.Errorf("trace-driven run diverged from generator-driven run")
	}
	return nil
}

func invariants(cycles uint64) error {
	for _, name := range core.Policies() {
		cfg := core.QuickConfig()
		cfg.PolicyName = name
		cfg.Th = 4
		sys, err := cfg.Build()
		if err != nil {
			return fmt.Errorf("%s: %v", name, err)
		}
		sys.Run(cycles)
		if err := sys.LLC().CheckInvariants(); err != nil {
			return fmt.Errorf("%s: %v", name, err)
		}
	}
	return nil
}

func determinism(cycles uint64) error {
	run := func() (core.Summary, error) {
		cfg := core.QuickConfig()
		sys, err := cfg.Build()
		if err != nil {
			return core.Summary{}, err
		}
		return core.Measure(sys, cycles/4, cycles), nil
	}
	a, err := run()
	if err != nil {
		return err
	}
	b, err := run()
	if err != nil {
		return err
	}
	// DeepEqual covers the full registry delta too, so every counter and
	// gauge — not just the summary scalars — must reproduce exactly.
	if !reflect.DeepEqual(a, b) {
		return fmt.Errorf("two identical runs produced different results")
	}
	return nil
}

// runtimeChecker runs a full simulation with the invariant checker
// attached at a tight interval and requires a clean report.
func runtimeChecker(cycles uint64) error {
	cfg := core.QuickConfig()
	cfg.CheckEvery = 1000
	sys, err := cfg.Build()
	if err != nil {
		return err
	}
	sys.Run(cycles)
	chk := sys.AccessProbe().(*invcheck.Checker)
	if chk.Runs() == 0 {
		return fmt.Errorf("checker never ran")
	}
	return chk.Err()
}

// faultCampaign degrades the NVM array to 50% effective capacity in
// steps, holding the full strict invariant suite at every step, and
// requires the degradation trajectory to be identical across two
// same-seed runs.
func faultCampaign(cycles uint64) error {
	run := func() ([]faultinject.StepResult, error) {
		cfg := core.QuickConfig()
		sys, err := cfg.Build()
		if err != nil {
			return nil, err
		}
		sys.Run(cycles / 4)
		camp, err := faultinject.NewCampaign(sys.LLC().Array(), faultinject.CapacityRamp(7, 0.9, 0.5, 0.1))
		if err != nil {
			return nil, err
		}
		var steps []faultinject.StepResult
		for {
			res, ok := camp.Next()
			if !ok {
				break
			}
			sys.LLC().InvalidateUnfit()
			if vs := invcheck.LLC(sys.LLC(), true); len(vs) > 0 {
				return nil, fmt.Errorf("step %d: %s", res.Index, vs[0])
			}
			if vs := invcheck.Array(sys.LLC().Array()); len(vs) > 0 {
				return nil, fmt.Errorf("step %d: %s", res.Index, vs[0])
			}
			sys.Run(cycles / 8)
			steps = append(steps, res)
		}
		if len(steps) == 0 {
			return nil, fmt.Errorf("campaign ran no steps")
		}
		last := steps[len(steps)-1]
		if last.Capacity > 0.5 {
			return nil, fmt.Errorf("final capacity %.3f, want <= 0.5", last.Capacity)
		}
		return steps, nil
	}
	a, err := run()
	if err != nil {
		return err
	}
	b, err := run()
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(a, b) {
		return fmt.Errorf("same-seed fault campaigns diverged")
	}
	return nil
}
