// Command tables prints the paper's configuration tables: Table I (BDI
// encodings), Table II (CA_RWR decision matrix), Table III (policy
// summary), Table IV (system specification), Table V (workload mixes) and
// the §V-G metadata-overhead analysis.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	table := flag.String("table", "all", "which table: 1,2,3,4,5,overhead,all")
	cpth := flag.Int("cpth", 37, "threshold shown in Table II")
	flag.Parse()

	show := func(t string) bool { return *table == "all" || *table == t }

	if show("1") {
		fmt.Println("Table I — BDI compression encodings")
		fmt.Print(experiments.Table1BDI())
		fmt.Println()
	}
	if show("2") {
		fmt.Println("Table II — CA_RWR insertion decision")
		fmt.Print(experiments.Table2CARWR(*cpth))
		fmt.Println()
	}
	if show("3") {
		fmt.Println("Table III — tested insertion policies")
		fmt.Printf("%-10s %-12s %-12s %-10s\n", "Name", "Disabling", "Compression", "NVM-aware")
		for _, r := range experiments.Table3Policies() {
			fmt.Printf("%-10s %-12s %-12v %-10v\n", r.Name, r.Granularity, r.Compression, r.NVMAware)
		}
		fmt.Println()
	}
	if show("4") {
		fmt.Println("Table IV — system specification (scaled defaults)")
		fmt.Print(experiments.Table4System(core.DefaultConfig()))
		fmt.Println()
	}
	if show("5") {
		fmt.Println("Table V — SPEC CPU 2006 and 2017 mixes")
		fmt.Print(experiments.Table5Mixes())
		fmt.Println()
	}
	if show("overhead") {
		fmt.Println("Metadata overhead (§V-G)")
		for _, r := range experiments.OverheadTable() {
			fmt.Printf("%-36s %3d bits/frame  %5.2f%% of NVM data array\n",
				r.Scheme, r.BitsPerFrame, r.FractionOfNVMData*100)
		}
		fmt.Println()
	}
	if *table != "all" && !show("1") && !show("2") && !show("3") && !show("4") && !show("5") && !show("overhead") {
		fmt.Fprintf(os.Stderr, "tables: unknown table %q\n", *table)
		os.Exit(1)
	}
}
