// Command compressprofile reproduces Fig. 2: the BDI compression-class
// distribution (HCR / LCR / incompressible) of every modelled SPEC
// application, measured by running the real compressor over generated
// block contents.
package main

import (
	"flag"
	"fmt"

	"repro/internal/experiments"
)

func main() {
	samples := flag.Int("samples", 8000, "blocks sampled per application")
	flag.Parse()

	rows := experiments.Fig2CompressionProfile(*samples)
	fmt.Println("Fig. 2 — block classification by compression ratio")
	fmt.Printf("%-14s %8s %8s %8s\n", "application", "HCR", "LCR", "incomp")
	for _, r := range rows {
		fmt.Printf("%-14s %7.1f%% %7.1f%% %7.1f%%\n",
			r.App, r.HCR*100, r.LCR*100, r.Incompressible*100)
	}
}
