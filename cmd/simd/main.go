// Command simd is the simulation daemon: it serves the hybrid-LLC
// simulator over HTTP as queued jobs with live epoch streaming and a
// content-addressed result cache.
//
//	simd -addr :8080 -workers 4 -queue 64
//
//	curl -s localhost:8080/v1/jobs -d '{"config":{"policy":"CP_SD"}}'
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -sN localhost:8080/v1/jobs/job-000001/epochs
//	curl -s localhost:8080/v1/estimate -d '{"config":{"policy":"CP_SD"}}'
//
// POST /v1/estimate is the synchronous analytic fast path: one short
// calibration simulation on the first query for a config, sub-millisecond
// cached answers after that (lifetime, young IPC, validated error
// bounds). Sweeps can opt in with "plan": "analytic" to simulate only
// the estimated Pareto frontier of their expansion.
//
// Multi-node fleet mode: the daemon above doubles as a coordinator
// (add -remote-only to dedicate its queue to remote workers), and
//
//	simd -worker -join http://coordinator:8080
//
// runs a stateless pull-loop worker instead of a server: acquire a
// lease, execute the job through the same engine, heartbeat while it
// runs, upload the artifact, repeat. Workers hold no durable state —
// kill one at any instant and its lease expires on the coordinator,
// which requeues the job for the next worker.
//
// SIGINT/SIGTERM drains gracefully in both modes: the server stops
// accepting and lets jobs finish (up to -drain); a worker finishes and
// uploads its in-flight lease, then exits. A second signal cancels
// in-flight work at the next epoch boundary.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/fleet"
	"repro/internal/jobstore"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent local simulations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "queued-job bound; full queue returns 429")
	jobTimeout := flag.Duration("jobtimeout", 0, "per-job deadline (0 = none)")
	cacheSize := flag.Int("cachesize", 256, "result cache entries (0 = disable)")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown deadline")
	data := flag.String("data", "", "durable state directory (journal + artifacts); empty = in-memory only")
	retries := flag.Int("retries", 0, "re-run attempts for transiently failed jobs (panic/timeout)")
	remoteOnly := flag.Bool("remote-only", false, "run no local pool; fleet workers drain the queue")
	leaseTTL := flag.Duration("lease-ttl", 0, "fleet lease heartbeat budget (0 = 10s)")
	workerMode := flag.Bool("worker", false, "run as a fleet worker instead of a server (requires -join)")
	join := flag.String("join", "", "coordinator base URL for -worker mode")
	workerID := flag.String("worker-id", "", "worker identity in leases and logs (default hostname-pid)")
	logFormat := flag.String("log-format", "text", "log encoding: text or json")
	flag.Parse()

	log, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	slog.SetDefault(log)

	if *workerMode {
		os.Exit(runWorker(log, *join, *workerID, *drain))
	}

	cache := *cacheSize
	if cache <= 0 {
		cache = server.NoCache
	}
	var store *jobstore.Store
	if *data != "" {
		var err error
		store, err = jobstore.Open(*data)
		if err != nil {
			log.Error("opening data dir", "dir", *data, "err", err)
			os.Exit(1)
		}
		defer store.Close()
		log.Info("durable store open", "dir", *data, "artifacts", store.CountArtifacts())
	}
	poolWorkers := *workers
	if *remoteOnly {
		poolWorkers = -1
	}
	m, err := server.NewManager(server.Options{
		Workers:    poolWorkers,
		QueueDepth: *queue,
		JobTimeout: *jobTimeout,
		CacheSize:  cache,
		Store:      store,
		Retries:    *retries,
		LeaseTTL:   *leaseTTL,
		Logger:     log,
	})
	if err != nil {
		log.Error("recovering from data dir", "dir", *data, "err", err)
		os.Exit(1)
	}
	srv := &http.Server{Addr: *addr, Handler: server.NewHandler(m, log)}

	errc := make(chan error, 1)
	go func() {
		log.Info("simd listening", "addr", *addr, "queue", *queue, "remote_only", *remoteOnly)
		errc <- srv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Info("shutting down", "signal", sig.String(), "drain", *drain)
	case err := <-errc:
		log.Error("listener failed", "err", err)
		m.Close()
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	go func() {
		// A second signal abandons the grace period.
		<-sigc
		log.Warn("second signal: canceling in-flight jobs")
		cancel()
	}()
	if err := srv.Shutdown(ctx); err != nil {
		log.Warn("listener shutdown", "err", err)
	}
	if err := m.Drain(ctx); err != nil && !errors.Is(err, context.Canceled) {
		log.Warn("drain expired; in-flight jobs canceled", "err", err)
	}
	m.Close()
	log.Info("simd stopped")
}

// newLogger builds the process logger for -log-format.
func newLogger(format string) (*slog.Logger, error) {
	var h slog.Handler
	switch format {
	case "text":
		h = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, nil)
	case "discard":
		h = slog.NewTextHandler(io.Discard, nil)
	default:
		return nil, fmt.Errorf("simd: -log-format %q (want text or json)", format)
	}
	return slog.New(h), nil
}

// runWorker is -worker mode: a stateless fleet pull loop against the
// coordinator at joinURL. The first signal drains (the in-flight lease
// finishes and uploads); a second, or the drain deadline, abandons it —
// the coordinator's lease expiry requeues the job, so abandonment is
// safe, just slower.
func runWorker(log *slog.Logger, joinURL, id string, drain time.Duration) int {
	if joinURL == "" {
		log.Error("-worker requires -join <coordinator-url>")
		return 2
	}
	if id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	w := &fleet.Worker{
		ID:      id,
		Client:  &cliutil.HTTPClient{Base: joinURL, Log: log},
		Execute: server.RunRequestArtifact,
		Log:     log,
	}

	drainCtx, stopDraining := context.WithCancel(context.Background())
	killCtx, kill := context.WithCancel(context.Background())
	defer kill()
	defer stopDraining()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		log.Info("draining: finishing in-flight lease", "signal", sig.String(), "deadline", drain)
		stopDraining()
		timer := time.NewTimer(drain)
		defer timer.Stop()
		select {
		case sig := <-sigc:
			log.Warn("second signal: abandoning in-flight lease", "signal", sig.String())
		case <-timer.C:
			log.Warn("drain deadline passed: abandoning in-flight lease")
		case <-killCtx.Done():
			return
		}
		kill()
	}()

	if err := w.Run(drainCtx, killCtx); err != nil {
		log.Error("worker failed", "err", err)
		return 1
	}
	log.Info("worker stopped")
	return 0
}
