// Command simd is the simulation daemon: it serves the hybrid-LLC
// simulator over HTTP as queued jobs with live epoch streaming and a
// content-addressed result cache.
//
//	simd -addr :8080 -workers 4 -queue 64
//
//	curl -s localhost:8080/v1/jobs -d '{"config":{"policy":"CP_SD"}}'
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -sN localhost:8080/v1/jobs/job-000001/epochs
//	curl -s localhost:8080/v1/estimate -d '{"config":{"policy":"CP_SD"}}'
//
// POST /v1/estimate is the synchronous analytic fast path: one short
// calibration simulation on the first query for a config, sub-millisecond
// cached answers after that (lifetime, young IPC, validated error
// bounds). Sweeps can opt in with "plan": "analytic" to simulate only
// the estimated Pareto frontier of their expansion.
//
// SIGINT/SIGTERM drains gracefully: the listener stops accepting,
// queued and running jobs finish (up to -drain), then the process
// exits. A second signal, or the drain deadline, cancels in-flight jobs
// at their next epoch boundary.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/jobstore"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "queued-job bound; full queue returns 429")
	jobTimeout := flag.Duration("jobtimeout", 0, "per-job deadline (0 = none)")
	cacheSize := flag.Int("cachesize", 256, "result cache entries (0 = disable)")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown deadline")
	data := flag.String("data", "", "durable state directory (journal + artifacts); empty = in-memory only")
	retries := flag.Int("retries", 0, "re-run attempts for transiently failed jobs (panic/timeout)")
	flag.Parse()

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	cache := *cacheSize
	if cache <= 0 {
		cache = server.NoCache
	}
	var store *jobstore.Store
	if *data != "" {
		var err error
		store, err = jobstore.Open(*data)
		if err != nil {
			log.Error("opening data dir", "dir", *data, "err", err)
			os.Exit(1)
		}
		defer store.Close()
		log.Info("durable store open", "dir", *data, "artifacts", store.CountArtifacts())
	}
	m, err := server.NewManager(server.Options{
		Workers:    *workers,
		QueueDepth: *queue,
		JobTimeout: *jobTimeout,
		CacheSize:  cache,
		Store:      store,
		Retries:    *retries,
		Logger:     log,
	})
	if err != nil {
		log.Error("recovering from data dir", "dir", *data, "err", err)
		os.Exit(1)
	}
	srv := &http.Server{Addr: *addr, Handler: server.NewHandler(m, log)}

	errc := make(chan error, 1)
	go func() {
		log.Info("simd listening", "addr", *addr, "queue", *queue)
		errc <- srv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Info("shutting down", "signal", sig.String(), "drain", *drain)
	case err := <-errc:
		log.Error("listener failed", "err", err)
		m.Close()
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	go func() {
		// A second signal abandons the grace period.
		<-sigc
		log.Warn("second signal: canceling in-flight jobs")
		cancel()
	}()
	if err := srv.Shutdown(ctx); err != nil {
		log.Warn("listener shutdown", "err", err)
	}
	if err := m.Drain(ctx); err != nil && !errors.Is(err, context.Canceled) {
		log.Warn("drain expired; in-flight jobs canceled", "err", err)
	}
	m.Close()
	log.Info("simd stopped")
}
