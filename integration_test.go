// Integration tests: cross-module, end-to-end invariants of the full
// reproduction — every policy run against real workloads on the real
// hierarchy, aged and unaged, checked for structural consistency,
// determinism and the orderings the paper's conclusions rest on.
package repro

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/forecast"
)

// enginePolicies is the subset the sharded-engine scenarios cycle
// through: a duelling compressing policy, a non-compressing baseline and
// the prefetch-free TAP variant keep the matrix representative without
// doubling every classic run.
var enginePolicies = []string{"CP_SD", "LHybrid", "TAP"}

func TestEveryPolicyEndToEndInvariants(t *testing.T) {
	// Classic sequential engine: every policy.
	for _, name := range core.Policies() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := core.QuickConfig()
			cfg.PolicyName = name
			cfg.Th = 4
			sys, err := cfg.Build()
			if err != nil {
				t.Fatal(err)
			}
			sys.Run(3_000_000)
			if err := sys.LLC().CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			st := sys.LLC().Stats
			if st.GetS == 0 || st.Inserts == 0 {
				t.Fatalf("no traffic: %+v", st)
			}
			// Fresh inserts plus migrations cover all partition inserts.
			if st.SRAMInserts+st.NVMInserts < st.Inserts {
				t.Fatalf("insert accounting: %d+%d < %d", st.SRAMInserts, st.NVMInserts, st.Inserts)
			}
		})
	}
	// Set-sharded engine: same invariants through the routed path, single
	// sharded and parallel (a non-power-of-two shard count on 256 sets).
	for _, name := range enginePolicies {
		for _, shards := range []int{1, 3} {
			name, shards := name, shards
			t.Run(fmt.Sprintf("%s/shards=%d", name, shards), func(t *testing.T) {
				t.Parallel()
				cfg := core.QuickConfig()
				cfg.PolicyName = name
				cfg.Th = 4
				cfg.Shards = shards
				e, err := cfg.BuildEngine()
				if err != nil {
					t.Fatal(err)
				}
				defer e.Close()
				e.Run(3_000_000)
				if err := e.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				snap := e.Snapshot()
				if snap.Counter("llc.gets") == 0 || snap.Counter("llc.inserts") == 0 {
					t.Fatalf("no traffic through the sharded engine: %v", snap.Counters)
				}
				if snap.Counter("llc.sram.inserts")+snap.Counter("llc.nvm.inserts") < snap.Counter("llc.inserts") {
					t.Fatalf("insert accounting: %d+%d < %d", snap.Counter("llc.sram.inserts"),
						snap.Counter("llc.nvm.inserts"), snap.Counter("llc.inserts"))
				}
			})
		}
	}
}

func TestAgedSystemInvariants(t *testing.T) {
	for _, name := range []string{"BH", "BH_CP", "LHybrid", "CP_SD"} {
		cfg := core.QuickConfig()
		cfg.PolicyName = name
		sys, err := cfg.Build()
		if err != nil {
			t.Fatal(err)
		}
		sys.Run(1_000_000)
		core.PreAge(sys, 0.7)
		if err := sys.LLC().CheckInvariants(); err != nil {
			t.Fatalf("%s after aging: %v", name, err)
		}
		sys.Run(2_000_000)
		if err := sys.LLC().CheckInvariants(); err != nil {
			t.Fatalf("%s after aged run: %v", name, err)
		}
		got := sys.LLC().EffectiveCapacityFraction()
		if math.Abs(got-0.7) > 0.05 {
			t.Errorf("%s: capacity drifted to %v during run", name, got)
		}
	}
}

func TestEndToEndDeterminism(t *testing.T) {
	// shards < 0 selects the classic sequential build; 1 and 2 drive the
	// same scenario through the set-sharded engine, inline and parallel.
	for _, shards := range []int{-1, 1, 2} {
		run := func() core.Summary {
			cfg := core.QuickConfig()
			cfg.PolicyName = "CP_SD_Th"
			cfg.Th = 4
			if shards < 0 {
				sys, err := cfg.Build()
				if err != nil {
					t.Fatal(err)
				}
				return core.Measure(sys, 500_000, 2_000_000)
			}
			cfg.Shards = shards
			e, err := cfg.BuildEngine()
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			return core.MeasureEngine(e, 500_000, 2_000_000)
		}
		a, b := run(), run()
		// DeepEqual also compares the full registry deltas, so every metric —
		// not just the summary scalars — must reproduce bit-for-bit.
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("shards=%d: non-deterministic end-to-end run:\n%+v\n%+v", shards, a, b)
		}
	}
}

// TestPaperOrderingBounds is the headline integration check: the paper's
// Fig 10a orderings on a real (quick) run.
func TestPaperOrderingBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-policy measurement")
	}
	type res struct {
		ipc   float64
		bytes uint64
	}
	measure := func(name string) res {
		var sum res
		for _, m := range []int{0, 3} {
			cfg := core.QuickConfig()
			cfg.MixID = m
			cfg.PolicyName = name
			sys, err := cfg.Build()
			if err != nil {
				t.Fatal(err)
			}
			s := core.Measure(sys, 1_000_000, 4_000_000)
			sum.ipc += s.MeanIPC / 2
			sum.bytes += s.NVMBytesWritten
		}
		return sum
	}
	up := measure("SRAM16")
	low := measure("SRAM4")
	bh := measure("BH")
	lh := measure("LHybrid")
	tap := measure("TAP")
	cp := measure("CP_SD")

	// Performance ordering: SRAM16 >= BH > LHybrid; CP_SD close to BH and
	// above LHybrid (the paper's +9%); everything above the 4w bound.
	if !(up.ipc >= bh.ipc && bh.ipc > low.ipc) {
		t.Errorf("bound ordering broken: up=%.4f bh=%.4f low=%.4f", up.ipc, bh.ipc, low.ipc)
	}
	if !(cp.ipc > lh.ipc) {
		t.Errorf("CP_SD IPC (%.4f) should exceed LHybrid (%.4f)", cp.ipc, lh.ipc)
	}
	if !(lh.ipc > low.ipc) {
		t.Errorf("LHybrid (%.4f) below the 4w SRAM bound (%.4f)", lh.ipc, low.ipc)
	}
	// Write-traffic ordering: TAP <= LHybrid < BH; CP_SD < BH.
	if !(tap.bytes <= lh.bytes && lh.bytes < bh.bytes) {
		t.Errorf("write ordering broken: tap=%d lh=%d bh=%d", tap.bytes, lh.bytes, bh.bytes)
	}
	if !(cp.bytes < bh.bytes/2) {
		t.Errorf("CP_SD bytes (%d) not well below BH (%d)", cp.bytes, bh.bytes)
	}
}

// TestForecastOrderings: lifetimes must order BH < BH_CP and BH < CP_SD on
// an accelerated-endurance run; capacities are monotonically non-increasing.
func TestForecastOrderings(t *testing.T) {
	if testing.Short() {
		t.Skip("forecast comparison")
	}
	fc := forecast.DefaultConfig()
	fc.WarmupCycles = 250_000
	fc.PhaseCycles = 1_500_000
	fc.CapacityStep = 0.125
	fc.MaxPhases = 10
	life := func(name string) float64 {
		cfg := core.QuickConfig()
		cfg.PolicyName = name
		cfg.EnduranceMean = 3e4
		sys, err := cfg.Build()
		if err != nil {
			t.Fatal(err)
		}
		res := forecast.Run(sys, fc)
		for i := 1; i < len(res.Points); i++ {
			if res.Points[i].Capacity > res.Points[i-1].Capacity+1e-9 {
				t.Fatalf("%s: capacity increased", name)
			}
		}
		return res.LifetimeSeconds
	}
	bh := life("BH")
	bhcp := life("BH_CP")
	cp := life("CP_SD")
	if math.IsInf(bh, 1) {
		t.Fatal("BH should reach 50% capacity at 3e4 endurance")
	}
	if !(bhcp > bh) {
		t.Errorf("BH_CP lifetime (%.0f) !> BH (%.0f): compression+byte-disabling must help", bhcp, bh)
	}
	if !math.IsInf(cp, 1) && !(cp > bh) {
		t.Errorf("CP_SD lifetime (%.0f) !> BH (%.0f)", cp, bh)
	}
}

// TestThKnobMonotonicity: raising Th must not increase NVM write traffic.
func TestThKnobMonotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("rule sweep")
	}
	bytesAt := func(th float64) uint64 {
		cfg := core.QuickConfig()
		cfg.EpochCycles = 250_000
		if th == 0 {
			cfg.PolicyName = "CP_SD"
		} else {
			cfg.PolicyName = "CP_SD_Th"
			cfg.Th = th
		}
		sys, err := cfg.Build()
		if err != nil {
			t.Fatal(err)
		}
		return core.Measure(sys, 1_000_000, 4_000_000).NVMBytesWritten
	}
	b0 := bytesAt(0)
	b8 := bytesAt(8)
	if b8 > b0+b0/20 {
		t.Errorf("Th=8 writes %d NVM bytes, more than CP_SD's %d", b8, b0)
	}
}

// TestDuelingConvergesOnExtremeWorkloads: on an all-incompressible mix
// (xz17/milc-heavy mix 9) the dueling winner should not be a tiny CPth —
// with nothing compressible, bigger thresholds cost nothing and the hit
// counters dominate.
func TestDuelingAdaptsToWorkload(t *testing.T) {
	cfg := core.QuickConfig()
	cfg.MixID = 8 // xz17 astar06 bwaves17 soplex06
	cfg.EpochCycles = 250_000
	sys, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(4_000_000)
	d, ok := core.Dueling(sys)
	if !ok {
		t.Fatal("no dueling controller")
	}
	if len(d.History) < 8 {
		t.Fatalf("only %d epochs recorded", len(d.History))
	}
}

// TestMaterializedEndToEnd drives the full system with the bit-exact NVM
// data path enabled: thousands of real blocks compressed, SECDED-encoded,
// scattered over (aging) frames, and verified on every LLC hit. Zero
// verification errors proves the performance simulator's accounting
// corresponds to a working hardware pipeline.
func TestMaterializedEndToEnd(t *testing.T) {
	cfg := core.QuickConfig()
	cfg.PolicyName = "CP_SD"
	cfg.MaterializeData = true
	sys, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(2_000_000)
	st := sys.LLC().Stats
	if st.NVMHits == 0 {
		t.Fatal("no NVM hits; verification never exercised")
	}
	if st.DataPathErrors != 0 {
		t.Fatalf("%d data-path verification errors", st.DataPathErrors)
	}
	if err := sys.LLC().VerifyAllResident(); err != nil {
		t.Fatal(err)
	}
	// Age the array mid-run, rotate the wear-leveling counter, continue:
	// still bit-exact.
	core.PreAge(sys, 0.85)
	sys.LLC().Array().Counter().Advance(13)
	sys.Run(2_000_000)
	st = sys.LLC().Stats
	if st.DataPathErrors != 0 {
		t.Fatalf("%d data-path errors after aging", st.DataPathErrors)
	}
	if err := sys.LLC().VerifyAllResident(); err != nil {
		t.Fatal(err)
	}
}
