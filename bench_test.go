// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates its figure's data on a scaled
// configuration (QuickConfig: 256-set LLC, two representative mixes) and
// logs the rows alongside ReportMetric key values; run with
//
//	go test -bench=Fig -benchmem          # all figures
//	go test -bench=BenchmarkFig10a -v     # one figure, with the row log
//
// The cmd/ tools run the same experiments at full scale with all ten
// mixes. EXPERIMENTS.md records paper-vs-measured values.
package repro

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/bdi"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/forecast"
)

// benchMixes are the representative mixes used by the harness: mix 1
// (compressible-heavy: zeusmp/gobmk/dealII/bzip2) and mix 4
// (includes the incompressible milc and highly-compressible libquantum).
var benchMixes = []int{0, 3}

func benchBase() core.Config {
	c := core.QuickConfig()
	c.EpochCycles = 250_000
	return c
}

const (
	benchWarmup  = 1_000_000
	benchMeasure = 4_000_000
)

// --- Tables -------------------------------------------------------------

func BenchmarkTable1BDI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Table1BDI()
	}
	b.Log("\n" + experiments.Table1BDI())
}

func BenchmarkTable2CARWR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Table2CARWR(37)
	}
	b.Log("\n" + experiments.Table2CARWR(37))
}

func BenchmarkTable3Policies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Table3Policies()
	}
	for _, r := range experiments.Table3Policies() {
		b.Logf("%-10s disabling=%s compression=%v nvm-aware=%v",
			r.Name, r.Granularity, r.Compression, r.NVMAware)
	}
}

func BenchmarkTable4System(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Table4System(core.DefaultConfig())
	}
	b.Log("\n" + experiments.Table4System(core.DefaultConfig()))
}

func BenchmarkTable5Mixes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Table5Mixes()
	}
	b.Log("\n" + experiments.Table5Mixes())
}

func BenchmarkTableOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.OverheadTable()
	}
	for _, r := range experiments.OverheadTable() {
		b.Logf("%s: %d bits/frame (%.2f%% of NVM data array)",
			r.Scheme, r.BitsPerFrame, r.FractionOfNVMData*100)
	}
}

// --- Fig. 2 --------------------------------------------------------------

func BenchmarkFig2CompressionProfile(b *testing.B) {
	var rows []experiments.ClassRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig2CompressionProfile(2000)
	}
	for _, r := range rows {
		b.Logf("%-14s HCR %5.1f%%  LCR %5.1f%%  incomp %5.1f%%",
			r.App, r.HCR*100, r.LCR*100, r.Incompressible*100)
	}
	avg := rows[len(rows)-1]
	b.ReportMetric(avg.HCR*100, "%HCR")
	b.ReportMetric(avg.LCR*100, "%LCR")
	b.ReportMetric((avg.HCR+avg.LCR)*100, "%compressible")
}

// --- Figs. 6 & 7 ----------------------------------------------------------

var (
	sweepOnce sync.Once
	sweepVal  experiments.CPthSweep
	sweepErr  error
)

func cpthSweep(b *testing.B) experiments.CPthSweep {
	b.Helper()
	sweepOnce.Do(func() {
		sweepVal, _, sweepErr = experiments.Fig6And7CPthSweep(benchBase(), benchMixes, benchWarmup, benchMeasure)
	})
	if sweepErr != nil {
		b.Fatal(sweepErr)
	}
	return sweepVal
}

func BenchmarkFig6HitRateVsCPth(b *testing.B) {
	var s experiments.CPthSweep
	for i := 0; i < b.N; i++ {
		s = cpthSweep(b)
	}
	best := 0.0
	for _, r := range s.Rows {
		ca, rwr := s.NormalizedHitRate(r.CAHits), s.NormalizedHitRate(r.CARWRHits)
		b.Logf("CPth %2d: CA %.4f  CA_RWR %.4f (normalized hits vs BH)", r.CPth, ca, rwr)
		if rwr > best {
			best = rwr
		}
	}
	b.Logf("CP_SD line: %.4f", s.NormalizedHitRate(s.CPSDHits))
	b.ReportMetric(best, "best-CA_RWR-vs-BH")
	b.ReportMetric(s.NormalizedHitRate(s.CPSDHits), "CP_SD-vs-BH")
}

func BenchmarkFig7BytesWrittenVsCPth(b *testing.B) {
	var s experiments.CPthSweep
	for i := 0; i < b.N; i++ {
		s = cpthSweep(b)
	}
	for _, r := range s.Rows {
		b.Logf("CPth %2d: CA %.4f  CA_RWR %.4f (normalized NVM bytes vs BH)", r.CPth,
			s.NormalizedBytes(r.CANVMBytes), s.NormalizedBytes(r.CARWRNVMBytes))
	}
	b.Logf("CP_SD line: %.4f", s.NormalizedBytes(s.CPSDBytes))
	b.ReportMetric(s.NormalizedBytes(s.CPSDBytes), "CP_SD-bytes-vs-BH")
}

// --- Fig. 8 ----------------------------------------------------------------

func BenchmarkFig8OptimalCPth(b *testing.B) {
	var res experiments.Fig8Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Fig8OptimalCPth(benchBase(), benchMixes,
			[]float64{1.0, 0.8, 0.6}, 2, 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, capacity := range res.Capacities {
		row := "capacity " + fmtPct(capacity) + ":"
		for k, f := range res.ByCapacity[i] {
			row += fmtCell(res.Candidates[k], f)
		}
		b.Log(row)
	}
	// Fraction of epochs won by CPth < 58 at full capacity (paper: ~30%).
	below := 0.0
	for k, c := range res.Candidates {
		if c < 58 {
			below += res.ByCapacity[0][k]
		}
	}
	b.ReportMetric(below*100, "%epochs-optimal-below-58")
}

func fmtPct(f float64) string { return fmt.Sprintf("%.0f%%", f*100) }

func fmtCell(c int, f float64) string { return fmt.Sprintf("  %d:%.0f%%", c, f*100) }

// --- Fig. 9 ----------------------------------------------------------------

func BenchmarkFig9ThTradeoff(b *testing.B) {
	var pts []experiments.ThPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, _, err = experiments.Fig9ThTradeoff(benchBase(), benchMixes,
			[]float64{0, 4, 8}, []float64{1.0, 0.8}, 5, benchWarmup, benchMeasure)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		b.Logf("capacity %3.0f%% Th=%1.0f: hits %.4f  NVM bytes %.4f (vs BH@100%%)",
			p.Capacity*100, p.Th, p.Hits, p.NVMBytes)
	}
}

// --- Figs. 1/10/11 (forecast family) ----------------------------------------

func quickForecastCfg() forecast.Config {
	f := forecast.DefaultConfig()
	f.WarmupCycles = 500_000
	f.PhaseCycles = 2_000_000
	f.CapacityStep = 0.1
	f.MaxPhases = 10
	return f
}

func runForecastBench(b *testing.B, mutate func(*core.Config), specs []experiments.ForecastSpec) []experiments.PolicyForecast {
	b.Helper()
	base := benchBase()
	if mutate != nil {
		mutate(&base)
	}
	var fs []experiments.PolicyForecast
	var err error
	for i := 0; i < b.N; i++ {
		fs, _, err = experiments.ForecastComparison(base, specs, benchMixes, quickForecastCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	bound := 0.0
	if up, ok := experiments.FindSpec(fs, "SRAM16"); ok {
		bound = up.InitialIPC
	}
	for _, pf := range fs {
		life := "inf"
		if !math.IsInf(pf.MeanLifetimeMonths, 1) {
			life = fmtMonths(pf.MeanLifetimeMonths)
		}
		norm := pf.InitialIPC
		if bound > 0 {
			norm /= bound
		}
		b.Logf("%-11s IPC(t=0) %.4f  norm %.4f  lifetime %s (censored %d)",
			pf.Label, pf.InitialIPC, norm, life, pf.CensoredMixes)
	}
	return fs
}

func fmtMonths(m float64) string { return fmt.Sprintf("%.2fmo", m) }

func reportLifetimeRatio(b *testing.B, fs []experiments.PolicyForecast, who, base string, metric string) {
	a, okA := experiments.FindSpec(fs, who)
	c, okC := experiments.FindSpec(fs, base)
	if okA && okC && !math.IsInf(a.MeanLifetimeMonths, 1) && c.MeanLifetimeMonths > 0 &&
		!math.IsInf(c.MeanLifetimeMonths, 1) {
		b.ReportMetric(a.MeanLifetimeMonths/c.MeanLifetimeMonths, metric)
	}
}

// BenchmarkFig1Forecast regenerates the motivating Fig. 1 comparison with
// the core curve set (upper bound, BH, LHybrid, CP_SD).
func BenchmarkFig1Forecast(b *testing.B) {
	fs := runForecastBench(b, nil, experiments.CoreForecastSpecs())
	reportLifetimeRatio(b, fs, "CP_SD", "BH", "CPSD/BH-lifetime")
	reportLifetimeRatio(b, fs, "LHybrid", "BH", "LHybrid/BH-lifetime")
}

// BenchmarkFig10aPerformanceVsLifetime runs the full Fig. 10a curve set.
func BenchmarkFig10aPerformanceVsLifetime(b *testing.B) {
	fs := runForecastBench(b, nil, experiments.StandardForecastSpecs())
	reportLifetimeRatio(b, fs, "CP_SD", "BH", "CPSD/BH-lifetime")
	reportLifetimeRatio(b, fs, "BH_CP", "BH", "BHCP/BH-lifetime")
	reportLifetimeRatio(b, fs, "CP_SD_Th8", "CP_SD", "Th8/CPSD-lifetime")
	if cp, ok := experiments.FindSpec(fs, "CP_SD"); ok {
		if lh, ok2 := experiments.FindSpec(fs, "LHybrid"); ok2 && lh.InitialIPC > 0 {
			b.ReportMetric(cp.InitialIPC/lh.InitialIPC, "CPSD/LHybrid-IPC")
		}
	}
}

// BenchmarkFig10bAsymmetry uses the 3 SRAM / 13 NVM way split (§V-C).
func BenchmarkFig10bAsymmetry(b *testing.B) {
	runForecastBench(b, func(c *core.Config) {
		c.SRAMWays, c.NVMWays = 3, 13
	}, experiments.CoreForecastSpecs())
}

// BenchmarkFig10cCoeffVariation raises the endurance cv to 0.25 (§V-D).
func BenchmarkFig10cCoeffVariation(b *testing.B) {
	fs := runForecastBench(b, func(c *core.Config) {
		c.EnduranceCV = 0.25
	}, experiments.CoreForecastSpecs())
	reportLifetimeRatio(b, fs, "CP_SD", "LHybrid", "CPSD/LHybrid-lifetime")
}

// BenchmarkFig11aL2Sensitivity doubles the L2 to 256 KB (§V-E).
func BenchmarkFig11aL2Sensitivity(b *testing.B) {
	runForecastBench(b, func(c *core.Config) {
		c.L2SizeKB = 2 * c.L2SizeKB
	}, experiments.CoreForecastSpecs())
}

// BenchmarkFig11bNVMLatency raises the NVM data-array latency 1.5x (§V-F).
func BenchmarkFig11bNVMLatency(b *testing.B) {
	runForecastBench(b, func(c *core.Config) {
		c.NVMLatencyFactor = 1.5
	}, experiments.CoreForecastSpecs())
}

// BenchmarkFig11cEqualizedCost reduces CP_SD's NVM ways to 11 and 10 so
// its total storage matches LHybrid's (§V-G).
func BenchmarkFig11cEqualizedCost(b *testing.B) {
	specs := []experiments.ForecastSpec{
		{Label: "LHybrid", Mutate: func(c *core.Config) { c.PolicyName = "LHybrid" }},
		{Label: "CP_SD", Mutate: func(c *core.Config) { c.PolicyName = "CP_SD" }},
		{Label: "CP_SD-11w", Mutate: func(c *core.Config) { c.PolicyName = "CP_SD"; c.NVMWays = 11 }},
		{Label: "CP_SD-10w", Mutate: func(c *core.Config) { c.PolicyName = "CP_SD"; c.NVMWays = 10 }},
	}
	runForecastBench(b, nil, specs)
}

// --- §IV-C epoch-size sensitivity -------------------------------------------

func BenchmarkEpochSizeSweep(b *testing.B) {
	var rows []experiments.EpochSizeRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.EpochSizeSweep(benchBase(), benchMixes[:1],
			[]uint64{250_000, 500_000, 1_000_000, 2_000_000}, benchWarmup, benchMeasure)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.Logf("epoch %8d cycles: hit rate %.4f", r.EpochCycles, r.HitRate)
	}
}

// --- Microbenchmarks of the substrate hot paths ------------------------------

func BenchmarkBDICompressMixed(b *testing.B) {
	blocks := make([][]byte, 4)
	for i := range blocks {
		blocks[i] = make([]byte, 64)
		for j := range blocks[i] {
			blocks[i][j] = byte(i * j)
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bdi.Compress(blocks[i%4])
	}
}

// BenchmarkMetricsSnapshot prices the windowed-delta capture that
// hier.System.Run performs (two registry snapshots plus a delta) against
// BenchmarkEndToEndSimulation's ~ms-scale Run: it must stay well under 5%
// of the simulation hot path.
func BenchmarkMetricsSnapshot(b *testing.B) {
	cfg := benchBase()
	sys, err := cfg.Build()
	if err != nil {
		b.Fatal(err)
	}
	sys.Run(200_000)
	reg := sys.Metrics()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		before := reg.Snapshot()
		_ = reg.Snapshot().Delta(before)
	}
}

func BenchmarkEndToEndSimulation(b *testing.B) {
	cfg := benchBase()
	sys, err := cfg.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Run(100_000)
	}
	b.ReportMetric(float64(sys.LLC().Stats.Hits), "LLC-hits-total")
}

// --- Ablations of the design choices called out in DESIGN.md -----------------

// ablationRun measures CP_SD with one design choice removed and reports
// hits and NVM bytes relative to the full design, at the given NVM
// capacity operating point.
func ablationRun(b *testing.B, name string, capacity float64, mutate func(*core.Config)) {
	b.Helper()
	measure := func(mod func(*core.Config)) (float64, float64) {
		var hits, bytes float64
		for _, m := range benchMixes {
			cfg := benchBase()
			cfg.MixID = m
			cfg.PolicyName = "CP_SD"
			if mod != nil {
				mod(&cfg)
			}
			sys, err := cfg.Build()
			if err != nil {
				b.Fatal(err)
			}
			core.PreAge(sys, capacity)
			s := core.Measure(sys, benchWarmup, benchMeasure)
			hits += float64(s.Hits)
			bytes += float64(s.NVMBytesWritten)
		}
		return hits, bytes
	}
	var fullH, fullB, ablH, ablB float64
	for i := 0; i < b.N; i++ {
		fullH, fullB = measure(nil)
		ablH, ablB = measure(mutate)
	}
	b.Logf("%s: hits %.4f of full design, NVM bytes %.4f of full design",
		name, ablH/fullH, ablB/fullB)
	b.ReportMetric(ablH/fullH, "hits-vs-full")
	b.ReportMetric(ablB/fullB, "bytes-vs-full")
}

// BenchmarkAblationHCROnly quantifies keeping the LCR encodings (§II-B):
// the ablation reverts to original BDI, which discards them.
func BenchmarkAblationHCROnly(b *testing.B) {
	ablationRun(b, "original-BDI (no LCR)", 1.0, func(c *core.Config) { c.AblationHCROnly = true })
}

// BenchmarkAblationHCROnlyAged repeats the LCR ablation on a 70%-capacity
// cache, where partially-worn frames can only hold compressed blocks and
// the LCR encodings earn their keep.
func BenchmarkAblationHCROnlyAged(b *testing.B) {
	ablationRun(b, "original-BDI (no LCR), 70% capacity", 0.7,
		func(c *core.Config) { c.AblationHCROnly = true })
}

// BenchmarkAblationNoInvalidate quantifies the invalidate-on-GetX flow
// (§III-A).
func BenchmarkAblationNoInvalidate(b *testing.B) {
	ablationRun(b, "no GetX invalidate", 1.0, func(c *core.Config) { c.AblationNoInvalidate = true })
}

// BenchmarkAblationNoMigration quantifies the read-reuse SRAM-victim
// migration (§IV-B).
func BenchmarkAblationNoMigration(b *testing.B) {
	ablationRun(b, "no read-reuse migration", 1.0, func(c *core.Config) { c.AblationNoMigration = true })
}

// BenchmarkExtensionInterSetRotation compares the forecast lifetime of
// CP_SD with and without the Start-Gap-style inter-set wear-leveling
// extension (§II-A lists the set dimension; the paper's scheme only
// levels within frames).
func BenchmarkExtensionInterSetRotation(b *testing.B) {
	run := func(rotate bool) float64 {
		fcfg := quickForecastCfg()
		fcfg.InterSetRotation = rotate
		specs := []experiments.ForecastSpec{
			{Label: "CP_SD", Mutate: func(c *core.Config) { c.PolicyName = "CP_SD" }},
		}
		fs, _, err := experiments.ForecastComparison(benchBase(), specs, benchMixes, fcfg)
		if err != nil {
			b.Fatal(err)
		}
		return fs[0].MeanLifetimeMonths
	}
	var plain, rotated float64
	for i := 0; i < b.N; i++ {
		plain = run(false)
		rotated = run(true)
	}
	b.Logf("CP_SD lifetime: %.2fmo plain, %.2fmo with inter-set rotation", plain, rotated)
	if plain > 0 && !math.IsInf(plain, 1) && !math.IsInf(rotated, 1) {
		b.ReportMetric(rotated/plain, "rotated/plain-lifetime")
	}
}

// BenchmarkEnergyComparison measures LLC energy per policy (the TAP paper
// motivates thrash-aware insertion with a 25% LLC energy reduction; this
// bench reports each policy's total relative to BH).
func BenchmarkEnergyComparison(b *testing.B) {
	var rows []experiments.EnergyRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, _, err = experiments.EnergyComparison(benchBase(),
			[]string{"BH", "BH_CP", "LHybrid", "TAP", "CP_SD"}, benchMixes,
			benchWarmup, benchMeasure)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.Logf("%-8s %s  (%.3f of BH, %.4f mJ/KI, IPC %.4f)",
			r.Policy, r.Breakdown, r.RelativeToBH, r.PerKI, r.MeanIPC)
		switch r.Policy {
		case "TAP":
			b.ReportMetric(r.RelativeToBH, "TAP-vs-BH-energy")
		case "CP_SD":
			b.ReportMetric(r.RelativeToBH, "CPSD-vs-BH-energy")
		}
	}
}

// BenchmarkExtensionPrefetcher quantifies the L2 stride prefetcher
// extension under TAP (whose original design distinguishes prefetch
// writes) and CP_SD: IPC and NVM traffic with and without prefetching.
func BenchmarkExtensionPrefetcher(b *testing.B) {
	measure := func(name string, pf bool) (float64, uint64) {
		var ipc float64
		var bytes uint64
		for _, m := range benchMixes {
			cfg := benchBase()
			cfg.MixID = m
			cfg.PolicyName = name
			cfg.EnablePrefetcher = pf
			cfg.PrefetchDegree = 2
			sys, err := cfg.Build()
			if err != nil {
				b.Fatal(err)
			}
			s := core.Measure(sys, benchWarmup, benchMeasure)
			ipc += s.MeanIPC / float64(len(benchMixes))
			bytes += s.NVMBytesWritten
		}
		return ipc, bytes
	}
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"TAP", "CP_SD"} {
			off, offB := measure(name, false)
			on, onB := measure(name, true)
			b.Logf("%-6s IPC %.4f -> %.4f with prefetch (%+.1f%%), NVM bytes %d -> %d",
				name, off, on, (on/off-1)*100, offB, onB)
			if name == "CP_SD" && i == 0 {
				b.ReportMetric(on/off, "CPSD-prefetch-speedup")
			}
		}
	}
}

// BenchmarkExtensionRRIP compares fit-LRU (the paper's NVM replacement)
// with the fit-RRIP extension under CP_SD.
func BenchmarkExtensionRRIP(b *testing.B) {
	measure := func(rrip bool) (float64, float64) {
		var hits, ipc float64
		for _, m := range benchMixes {
			cfg := benchBase()
			cfg.MixID = m
			cfg.PolicyName = "CP_SD"
			cfg.NVMRRIP = rrip
			sys, err := cfg.Build()
			if err != nil {
				b.Fatal(err)
			}
			s := core.Measure(sys, benchWarmup, benchMeasure)
			hits += float64(s.Hits)
			ipc += s.MeanIPC / float64(len(benchMixes))
		}
		return hits, ipc
	}
	for i := 0; i < b.N; i++ {
		lruHits, lruIPC := measure(false)
		rripHits, rripIPC := measure(true)
		b.Logf("fit-LRU  hits %.0f IPC %.4f", lruHits, lruIPC)
		b.Logf("fit-RRIP hits %.0f IPC %.4f (%.3fx hits)", rripHits, rripIPC, rripHits/lruHits)
		if i == 0 {
			b.ReportMetric(rripHits/lruHits, "RRIP/LRU-hits")
		}
	}
}

// BenchmarkPerAppStudy reproduces the §IV-A per-benchmark placement
// analysis: under naive CA, incompressible applications (xz17/milc06)
// starve the NVM part while compressible ones (GemsFDTD06) flood it.
func BenchmarkPerAppStudy(b *testing.B) {
	var rows []experiments.AppRow
	var err error
	for i := 0; i < b.N; i++ {
		cfg := benchBase()
		cfg.Scale = 0.08
		rows, _, err = experiments.PerAppStudy(cfg, "CA", 300_000, 1_200_000)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.Logf("%-14s hit %.3f  NVM share %.3f  compressible %.3f",
			r.App, r.HitRate, r.NVMShare, r.CompressibleFr)
		switch r.App {
		case "xz17":
			b.ReportMetric(r.NVMShare, "xz17-NVM-share")
		case "GemsFDTD06":
			b.ReportMetric(r.NVMShare, "GemsFDTD-NVM-share")
		}
	}
}

// BenchmarkTwSensitivity verifies the paper's §IV-D observation that the
// rule is insensitive to Tw: hits and bytes barely move across Tw values.
func BenchmarkTwSensitivity(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		var hits []float64
		for _, tw := range []float64{2, 5, 10} {
			var h float64
			for _, m := range benchMixes {
				cfg := benchBase()
				cfg.MixID = m
				cfg.PolicyName = "CP_SD_Th"
				cfg.Th, cfg.Tw = 4, tw
				sys, err := cfg.Build()
				if err != nil {
					b.Fatal(err)
				}
				h += float64(core.Measure(sys, benchWarmup, benchMeasure).Hits)
			}
			hits = append(hits, h)
			b.Logf("Tw=%2.0f%%: hits %.0f", tw, h)
		}
		min, max := hits[0], hits[0]
		for _, h := range hits {
			if h < min {
				min = h
			}
			if h > max {
				max = h
			}
		}
		spread = (max - min) / min
	}
	b.ReportMetric(spread*100, "%hit-spread-across-Tw")
}
