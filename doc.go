// Package repro is a from-scratch Go reproduction of "Compression-Aware
// and Performance-Efficient Insertion Policies for Long-Lasting Hybrid
// LLCs" (HPCA 2023): a hybrid NVM-SRAM last-level cache simulator with
// BDI compression, byte-level fault tolerance, wear forecasting, and the
// paper's full insertion-policy suite (BH, BH_CP, CA, CA_RWR, CP_SD,
// CP_SD_Th, LHybrid, TAP).
//
// The library lives under internal/; see README.md for the package map,
// examples/ for runnable entry points, cmd/ for the experiment tools, and
// bench_test.go in this directory for the one-bench-per-figure harness.
package repro
