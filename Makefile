# Convenience targets for the hybrid-LLC reproduction.

GO ?= go

.PHONY: all build test vet lint fmt-check ci race-shard race-server shard-smoke fuzz-smoke coloring-smoke serve server-smoke recovery-smoke estimate-smoke tournament-smoke fleet-smoke faultstudy bench bench-parallel bench-estimate bench-go bench-figures validate experiments clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static-analysis gate: vet always, staticcheck when the toolchain has
# it (CI installs it; a bare container skips it rather than failing).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go vet ran)"; \
	fi

test:
	$(GO) test ./...

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# Mirrors .github/workflows/ci.yml so the same gate runs locally.
ci: fmt-check lint build
	$(GO) test -race ./...
	$(MAKE) race-shard
	$(MAKE) shard-smoke
	$(MAKE) fuzz-smoke
	$(MAKE) coloring-smoke
	$(MAKE) server-smoke
	$(MAKE) recovery-smoke
	$(MAKE) estimate-smoke
	$(MAKE) tournament-smoke
	$(MAKE) fleet-smoke
	$(GO) run ./cmd/faultstudy -quick
	$(MAKE) bench
	$(MAKE) bench-parallel
	$(MAKE) bench-estimate

# Dedicated race gate for the concurrent engine and the packages it
# drives: -count=2 reruns defeat one-shot schedule luck. The simd job
# daemon rides along — its queue/drain/stream paths are all goroutine
# hand-offs.
race-shard:
	$(GO) test -race -count=2 ./internal/shard ./internal/hybrid ./internal/hier ./internal/server ./internal/fleet ./internal/coloring

# Shard-equivalence smoke: the differential matrix proving shards=N is
# bit-identical to shards=1, under the race detector.
shard-smoke:
	$(GO) test -race -run 'TestShardEquivalence|TestShardForecastEquivalence' ./internal/shard

# Ten seconds of coverage-guided fuzzing per target, on top of the
# checked-in corpora (which always replay as part of go test).
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzBDIRoundTrip$$' -fuzztime=10s ./internal/bdi
	$(GO) test -run='^$$' -fuzz='^FuzzTraceParse$$' -fuzztime=10s ./internal/trace
	$(GO) test -run='^$$' -fuzz='^FuzzSweepSpecDecode$$' -fuzztime=10s ./internal/server
	$(GO) test -run='^$$' -fuzz='^FuzzEstimateSpecDecode$$' -fuzztime=10s ./internal/server
	$(GO) test -run='^$$' -fuzz='^FuzzColoringConfigDecode$$' -fuzztime=10s ./internal/core

# Wear-leveling smoke: the wear-feedback coloring on the zipfian
# set-pressure scenario must cut the measured inter-set wear CoV by at
# least 30% versus the identical run with coloring off, and must not
# shorten the lifetime-to-50%-capacity. The checked-in artifacts under
# results/coloring_smoke_*.json record this exact operating point.
COLORING_SMOKE = -quick -mix 12 -capacity 0.5 -measure 8000000
coloring-smoke:
	@base=$$($(GO) run ./cmd/wearmap $(COLORING_SMOKE) -json); \
	col=$$($(GO) run ./cmd/wearmap $(COLORING_SMOKE) -coloring wear:interval=2,pairs=32 -json); \
	bcov=$$(echo "$$base" | sed -n 's/.*"sim_wear_interset_cov": *\([0-9.e+-]*\).*/\1/p' | head -1); \
	ccov=$$(echo "$$col"  | sed -n 's/.*"sim_wear_interset_cov": *\([0-9.e+-]*\).*/\1/p' | head -1); \
	bmon=$$(echo "$$base" | sed -n 's/.*"aged_months": *\([0-9.e+-]*\).*/\1/p' | head -1); \
	cmon=$$(echo "$$col"  | sed -n 's/.*"aged_months": *\([0-9.e+-]*\).*/\1/p' | head -1); \
	[ -n "$$bcov" ] && [ -n "$$ccov" ] && [ -n "$$bmon" ] && [ -n "$$cmon" ] \
		|| { echo "coloring-smoke: missing fields (cov $$bcov -> $$ccov, months $$bmon -> $$cmon)"; exit 1; }; \
	awk -v b="$$bcov" -v c="$$ccov" 'BEGIN { \
		if (!(c <= 0.7 * b)) { printf "coloring-smoke: inter-set CoV %s -> %s, reduction under 30%%\n", b, c; exit 1 } }' \
		|| exit 1; \
	awk -v b="$$bmon" -v c="$$cmon" 'BEGIN { \
		if (c < b) { printf "coloring-smoke: lifetime to 50%% capacity regressed %s -> %s months\n", b, c; exit 1 } }' \
		|| exit 1; \
	echo "coloring-smoke: inter-set CoV $$bcov -> $$ccov, lifetime $$bmon -> $$cmon months"

# Run the simulation daemon on :8080 (see README for the curl quickstart).
serve:
	$(GO) run ./cmd/simd

# Daemon smoke: boot simd on a scratch port, submit a quick job over
# HTTP, poll it to completion, pull the epoch stream, and check that a
# resubmission is served from the result cache.
SMOKE_ADDR = 127.0.0.1:18080
SMOKE_BODY = {"config":{"llc_sets":256,"scale":0.15,"l2_size_kb":64,"epoch_cycles":200000},"warmup_cycles":100000,"measure_cycles":600000}
server-smoke:
	@$(GO) build -o simd-smoke ./cmd/simd
	@./simd-smoke -addr $(SMOKE_ADDR) >/dev/null 2>&1 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null; rm -f simd-smoke' EXIT; \
	ok=; for i in $$(seq 1 50); do \
		curl -fs http://$(SMOKE_ADDR)/healthz >/dev/null 2>&1 && ok=1 && break; sleep 0.1; \
	done; \
	[ -n "$$ok" ] || { echo "simd never came up"; exit 1; }; \
	id=$$(curl -fs -X POST -d '$(SMOKE_BODY)' http://$(SMOKE_ADDR)/v1/jobs \
		| sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -1); \
	[ -n "$$id" ] || { echo "submission returned no job id"; exit 1; }; \
	state=; for i in $$(seq 1 150); do \
		state=$$(curl -fs http://$(SMOKE_ADDR)/v1/jobs/$$id \
			| sed -n 's/.*"state": *"\([^"]*\)".*/\1/p' | head -1); \
		[ "$$state" = completed ] && break; sleep 0.2; \
	done; \
	[ "$$state" = completed ] || { echo "job $$id ended in state '$$state'"; exit 1; }; \
	epochs=$$(curl -fs http://$(SMOKE_ADDR)/v1/jobs/$$id/epochs | wc -l); \
	[ "$$epochs" -ge 2 ] || { echo "epoch stream returned $$epochs lines"; exit 1; }; \
	curl -fs http://$(SMOKE_ADDR)/v1/jobs/$$id/report?format=text | grep -q mean_ipc \
		|| { echo "report render missing mean_ipc"; exit 1; }; \
	hit=$$(curl -fs -X POST -d '$(SMOKE_BODY)' http://$(SMOKE_ADDR)/v1/jobs \
		| sed -n 's/.*"cache_hit": *\(true\|false\).*/\1/p' | head -1); \
	[ "$$hit" = true ] || { echo "resubmission was not a cache hit"; exit 1; }; \
	echo "server-smoke: job $$id completed, $$epochs epochs streamed, cache hit on resubmit"

# Crash-recovery smoke: boot simd with a durable data directory, submit
# a four-child sweep, SIGKILL the daemon once at least one child has
# completed, restart it over the same directory, and require the sweep
# to finish with every child completed — the survivors served from
# artifacts (cache hits), the interrupted ones re-executed.
RECOVERY_ADDR = 127.0.0.1:18081
RECOVERY_SWEEP = {"base":{"config":{"llc_sets":256,"scale":0.15,"l2_size_kb":64,"epoch_cycles":200000},"warmup_cycles":100000,"measure_cycles":2000000},"axes":[{"field":"policy","values":["CA","CA_RWR"]},{"field":"cpth","values":[30,40]}],"concurrency":1}
recovery-smoke:
	@$(GO) build -o simd-recovery ./cmd/simd
	@rm -rf recovery-smoke-data; \
	./simd-recovery -addr $(RECOVERY_ADDR) -data recovery-smoke-data >/dev/null 2>&1 & pid=$$!; \
	trap 'kill -9 $$pid 2>/dev/null; rm -rf simd-recovery recovery-smoke-data' EXIT; \
	ok=; for i in $$(seq 1 50); do \
		curl -fs http://$(RECOVERY_ADDR)/healthz >/dev/null 2>&1 && ok=1 && break; sleep 0.1; \
	done; \
	[ -n "$$ok" ] || { echo "simd never came up"; exit 1; }; \
	sid=$$(curl -fs -X POST -d '$(RECOVERY_SWEEP)' http://$(RECOVERY_ADDR)/v1/sweeps \
		| sed -n 's/.*"id": *"\(sweep-[^"]*\)".*/\1/p' | head -1); \
	[ -n "$$sid" ] || { echo "sweep submission returned no id"; exit 1; }; \
	done_n=; for i in $$(seq 1 600); do \
		done_n=$$(curl -fs http://$(RECOVERY_ADDR)/v1/sweeps/$$sid \
			| sed -n 's/.*"completed": *\([0-9][0-9]*\).*/\1/p' | head -1); \
		[ -n "$$done_n" ] && [ "$$done_n" -ge 1 ] && break; sleep 0.1; \
	done; \
	[ -n "$$done_n" ] && [ "$$done_n" -ge 1 ] || { echo "no child completed before the kill"; exit 1; }; \
	kill -9 $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	./simd-recovery -addr $(RECOVERY_ADDR) -data recovery-smoke-data >/dev/null 2>&1 & pid=$$!; \
	ok=; for i in $$(seq 1 50); do \
		curl -fs http://$(RECOVERY_ADDR)/healthz >/dev/null 2>&1 && ok=1 && break; sleep 0.1; \
	done; \
	[ -n "$$ok" ] || { echo "simd never came back after the kill"; exit 1; }; \
	state=; for i in $$(seq 1 600); do \
		state=$$(curl -fs http://$(RECOVERY_ADDR)/v1/sweeps/$$sid \
			| sed -n 's/.*"state": *"\([a-z]*\)".*/\1/p' | head -1); \
		[ "$$state" = completed ] && break; sleep 0.2; \
	done; \
	[ "$$state" = completed ] || { echo "resumed sweep ended in state '$$state'"; exit 1; }; \
	body=$$(curl -fs http://$(RECOVERY_ADDR)/v1/sweeps/$$sid); \
	completed=$$(echo "$$body" | sed -n 's/.*"completed": *\([0-9][0-9]*\).*/\1/p' | head -1); \
	hits=$$(echo "$$body" | sed -n 's/.*"cache_hits": *\([0-9][0-9]*\).*/\1/p' | head -1); \
	[ "$$completed" = 4 ] || { echo "resumed sweep completed $$completed/4 children"; exit 1; }; \
	[ -n "$$hits" ] && [ "$$hits" -ge 1 ] || { echo "no child was served from artifacts ($$hits hits)"; exit 1; }; \
	echo "recovery-smoke: sweep $$sid survived SIGKILL ($$done_n done at kill, $$hits artifact hits after restart)"

# Analytic-estimate smoke: boot simd, query POST /v1/estimate twice (the
# second must be a cache hit), then run the matching full job over a
# measure window equal to the calibration window and require the
# estimate's young_ipc to agree with the simulated mean_ipc — equal
# windows make the two measurements the same simulation, so they must
# agree to float round-off, not just to the error bound.
ESTIMATE_ADDR = 127.0.0.1:18082
ESTIMATE_CFG = "config":{"llc_sets":256,"scale":0.15,"l2_size_kb":64,"epoch_cycles":200000,"policy":"BH","endurance_mean":20000},"warmup_cycles":100000
ESTIMATE_BODY = {$(ESTIMATE_CFG),"calibration_cycles":600000}
ESTIMATE_JOB = {$(ESTIMATE_CFG),"measure_cycles":600000}
estimate-smoke:
	@$(GO) build -o simd-estimate ./cmd/simd
	@./simd-estimate -addr $(ESTIMATE_ADDR) >/dev/null 2>&1 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null; rm -f simd-estimate' EXIT; \
	ok=; for i in $$(seq 1 50); do \
		curl -fs http://$(ESTIMATE_ADDR)/healthz >/dev/null 2>&1 && ok=1 && break; sleep 0.1; \
	done; \
	[ -n "$$ok" ] || { echo "simd never came up"; exit 1; }; \
	first=$$(curl -fs -X POST -d '$(ESTIMATE_BODY)' http://$(ESTIMATE_ADDR)/v1/estimate); \
	young=$$(echo "$$first" | sed -n 's/.*"young_ipc": *\([0-9.e+-]*\).*/\1/p' | head -1); \
	[ -n "$$young" ] || { echo "estimate returned no young_ipc: $$first"; exit 1; }; \
	hit=$$(curl -fs -X POST -d '$(ESTIMATE_BODY)' http://$(ESTIMATE_ADDR)/v1/estimate \
		| sed -n 's/.*"cache_hit": *\(true\|false\).*/\1/p' | head -1); \
	[ "$$hit" = true ] || { echo "repeat estimate was not a cache hit"; exit 1; }; \
	id=$$(curl -fs -X POST -d '$(ESTIMATE_JOB)' http://$(ESTIMATE_ADDR)/v1/jobs \
		| sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -1); \
	[ -n "$$id" ] || { echo "job submission returned no id"; exit 1; }; \
	state=; for i in $$(seq 1 150); do \
		state=$$(curl -fs http://$(ESTIMATE_ADDR)/v1/jobs/$$id \
			| sed -n 's/.*"state": *"\([^"]*\)".*/\1/p' | head -1); \
		[ "$$state" = completed ] && break; sleep 0.2; \
	done; \
	[ "$$state" = completed ] || { echo "job $$id ended in state '$$state'"; exit 1; }; \
	mean=$$(curl -fs http://$(ESTIMATE_ADDR)/v1/jobs/$$id \
		| sed -n 's/.*"mean_ipc": *\([0-9.e+-]*\).*/\1/p' | head -1); \
	[ -n "$$mean" ] || { echo "completed job carries no mean_ipc"; exit 1; }; \
	awk -v y="$$young" -v m="$$mean" 'BEGIN { \
		d = y - m; if (d < 0) d = -d; \
		if (m == 0 || d / m > 1e-6) { printf "young_ipc %s disagrees with mean_ipc %s\n", y, m; exit 1 } }' \
		|| exit 1; \
	echo "estimate-smoke: cached estimate agrees with the simulated IPC ($$young vs $$mean)"

# Tournament smoke: the policy league table on the quick preset, run
# twice — the standings must be byte-identical (league determinism is an
# acceptance guarantee, not a best effort).
tournament-smoke:
	@$(GO) run ./cmd/tournament -quick > tournament-smoke-1.txt
	@$(GO) run ./cmd/tournament -quick > tournament-smoke-2.txt
	@diff tournament-smoke-1.txt tournament-smoke-2.txt \
		|| { echo "tournament league table is nondeterministic"; exit 1; }
	@grep -q "standings" tournament-smoke-1.txt \
		|| { echo "tournament output lacks the standings table"; exit 1; }
	@rm -f tournament-smoke-1.txt tournament-smoke-2.txt
	@echo "tournament-smoke: deterministic league table"

# Fleet smoke: a remote-only coordinator plus two pull-loop workers, all
# real processes on localhost. One worker is SIGKILLed while it holds a
# lease; the coordinator must expire that lease on the heartbeat
# deadline (visible in the Prometheus exposition), requeue the job, and
# the surviving worker must still finish the whole sweep — every upload
# hash-verified against its content address before acceptance.
FLEET_ADDR = 127.0.0.1:18083
FLEET_SWEEP = {"base":{"config":{"llc_sets":256,"scale":0.15,"l2_size_kb":64,"epoch_cycles":200000},"warmup_cycles":100000,"measure_cycles":8000000},"axes":[{"field":"cpth","values":[20,30,40,50]}],"concurrency":2}
fleet-smoke:
	@$(GO) build -o simd-fleet ./cmd/simd
	@rm -rf fleet-smoke-data; \
	./simd-fleet -addr $(FLEET_ADDR) -remote-only -data fleet-smoke-data -lease-ttl 1s -log-format json >/dev/null 2>&1 & cpid=$$!; \
	w1=; w2=; \
	trap 'kill -9 $$cpid $$w1 $$w2 2>/dev/null; rm -rf simd-fleet fleet-smoke-data' EXIT; \
	ok=; for i in $$(seq 1 50); do \
		curl -fs http://$(FLEET_ADDR)/healthz >/dev/null 2>&1 && ok=1 && break; sleep 0.1; \
	done; \
	[ -n "$$ok" ] || { echo "coordinator never came up"; exit 1; }; \
	./simd-fleet -worker -join http://$(FLEET_ADDR) -worker-id smoke-w1 >/dev/null 2>&1 & w1=$$!; \
	./simd-fleet -worker -join http://$(FLEET_ADDR) -worker-id smoke-w2 >/dev/null 2>&1 & w2=$$!; \
	sid=$$(curl -fs -X POST -d '$(FLEET_SWEEP)' http://$(FLEET_ADDR)/v1/sweeps \
		| sed -n 's/.*"id": *"\(sweep-[^"]*\)".*/\1/p' | head -1); \
	[ -n "$$sid" ] || { echo "sweep submission returned no id"; exit 1; }; \
	held=; for i in $$(seq 1 100); do \
		curl -fs http://$(FLEET_ADDR)/v1/leases | grep -q '"worker": *"smoke-w1"' && held=1 && break; sleep 0.1; \
	done; \
	[ -n "$$held" ] || { echo "smoke-w1 never acquired a lease"; exit 1; }; \
	kill -9 $$w1 2>/dev/null; wait $$w1 2>/dev/null; w1=; \
	expired=; for i in $$(seq 1 100); do \
		n=$$(curl -fs -H 'Accept: text/plain; version=0.0.4' http://$(FLEET_ADDR)/metrics \
			| sed -n 's/^simd_fleet_leases_expired \([0-9][0-9]*\).*/\1/p' | head -1); \
		[ -n "$$n" ] && [ "$$n" -ge 1 ] && expired=$$n && break; sleep 0.2; \
	done; \
	[ -n "$$expired" ] || { echo "killed worker's lease never expired"; exit 1; }; \
	state=; for i in $$(seq 1 600); do \
		state=$$(curl -fs http://$(FLEET_ADDR)/v1/sweeps/$$sid \
			| sed -n 's/.*"state": *"\([a-z]*\)".*/\1/p' | head -1); \
		[ "$$state" = completed ] && break; sleep 0.2; \
	done; \
	[ "$$state" = completed ] || { echo "sweep ended in state '$$state' after the worker kill"; exit 1; }; \
	completed=$$(curl -fs http://$(FLEET_ADDR)/v1/sweeps/$$sid \
		| sed -n 's/.*"completed": *\([0-9][0-9]*\).*/\1/p' | head -1); \
	[ "$$completed" = 4 ] || { echo "sweep completed $$completed/4 children"; exit 1; }; \
	requeued=$$(curl -fs -H 'Accept: text/plain; version=0.0.4' http://$(FLEET_ADDR)/metrics \
		| sed -n 's/^simd_fleet_leases_requeued \([0-9][0-9]*\).*/\1/p' | head -1); \
	[ -n "$$requeued" ] && [ "$$requeued" -ge 1 ] || { echo "expired lease was never requeued ($$requeued)"; exit 1; }; \
	kill $$w2 2>/dev/null; \
	echo "fleet-smoke: sweep $$sid survived worker SIGKILL ($$expired lease expired, $$requeued requeued, 4/4 children hash-verified)"

# Deterministic fault-injection degradation study (quick preset).
faultstudy:
	$(GO) run ./cmd/faultstudy -quick

# Hot-path performance baseline: ns/allocs/bytes per LLC access across a
# mix×policy cross on the quick configuration. CI uploads the JSON as an
# artifact; compare two runs by diffing the files.
bench:
	$(GO) run ./cmd/bench -quick -mixes 1,4 -policies BH,CA,CP_SD,TAP -out BENCH_hotpath.json

# Set-sharded engine scaling curve (wall-clock vs shard count, with the
# built-in fault-digest equivalence check). Shard counts are explicit so
# the artifact always carries the 4-shard row; actual speedup depends on
# the cores the machine grants.
bench-parallel:
	$(GO) run ./cmd/bench -parallel -quick -shards 1,2,4 -measure 2000000 -out BENCH_parallel.json

# POST /v1/estimate fast-path latency and allocation gate: fails when the
# cached p50 reaches 1 ms or a cache lookup allocates.
bench-estimate:
	$(GO) run ./cmd/bench -estimate -out BENCH_estimate.json

# Full go-test benchmark suite: one benchmark per paper table/figure,
# plus the ablation/extension benches and the substrate microbenchmarks.
bench-go:
	$(GO) test -bench=. -benchmem -benchtime 1x ./...

# Only the figure/table reproductions, with their row logs.
bench-figures:
	$(GO) test -bench='Fig|Table' -benchtime 1x -v .

# End-to-end self checks (bit-exact data path, trace fidelity, invariants).
validate:
	$(GO) run ./cmd/validate

# Regenerate the calibration outputs under results/ (tens of minutes).
experiments:
	mkdir -p results
	$(GO) run ./cmd/compressprofile                     > results/fig2.txt
	$(GO) run ./cmd/cpthsweep  -mixes 1,4,6,8           > results/fig67.txt
	$(GO) run ./cmd/cpthsweep  -fig8 -mixes 1,4,6,8     > results/fig8.txt
	$(GO) run ./cmd/thsweep    -mixes 1,4,6,8           > results/fig9.txt
	$(GO) run ./cmd/forecast   -mixes 1,4,6,8 -step 0.05 > results/fig10a.txt
	$(GO) run ./cmd/forecast   -mixes 1,4 -sram 3 -nvm 13 -policies core > results/fig10b.txt
	$(GO) run ./cmd/forecast   -mixes 1,4 -cv 0.25 -policies core        > results/fig10c.txt
	$(GO) run ./cmd/forecast   -mixes 1,4 -l2kb 256 -policies core       > results/fig11a.txt
	$(GO) run ./cmd/forecast   -mixes 1,4 -nvmlat 1.5 -policies core     > results/fig11b.txt
	$(GO) run ./cmd/cpthsweep  -epochsweep -mixes 1,4   > results/epochsweep.txt
	$(GO) run ./cmd/energy     -mixes 1,4,6,8           > results/energy.txt

clean:
	rm -f test_output.txt bench_output.txt BENCH_hotpath.json BENCH_parallel.json BENCH_estimate.json simd-smoke simd-recovery simd-estimate simd-fleet tournament-smoke-1.txt tournament-smoke-2.txt
	rm -rf recovery-smoke-data fleet-smoke-data
